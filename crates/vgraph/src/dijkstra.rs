//! Incremental shortest-path engine over the visibility graph: blind
//! Dijkstra, goal-directed A*, and warm label continuation.
//!
//! Three paper call sites drive the interface:
//!
//! * **IOR** (Alg. 1) searches from the data point until `S` and `E`
//!   settle, re-running whenever new obstacles arrive.
//! * **CPLC** (Alg. 2) consumes nodes one at a time in ascending priority
//!   and stops early via Lemma 7 — which is exactly
//!   [`DijkstraEngine::next_settled`].
//! * **odist** (Def. 4) searches point-to-point.
//!
//! ## Kernel modes
//!
//! The engine always pops nodes in ascending `f(v) = d(v) + h(v)`, where
//! `h` is the [`Goal`] heuristic (identically `0.0` for [`Goal::None`],
//! which makes the engine a plain Dijkstra). The heuristics are Euclidean
//! lower bounds on the remaining obstructed distance (**admissible** —
//! obstructed distance dominates Euclidean distance) and satisfy
//! `|h(u) − h(v)| ≤ ‖u, v‖ ≤ w(u, v)` (**consistent**), so every popped
//! node carries its exact shortest-path distance, exactly as in blind
//! Dijkstra — the goal only changes *how many* nodes are expanded before a
//! target settles.
//!
//! A caller-supplied [`DijkstraEngine::set_bound`] turns pruning thresholds
//! (IOR's retrieval bound, CPLC's Lemma 7 `CPLMAX`, RLU's `RLMAX`) into
//! *expansion* stoppers: candidates with `f > bound` are never pushed — so
//! their sight tests in the transient overlay are never paid — and the
//! search reports exhaustion as soon as the heap minimum exceeds the
//! bound. The bound may only shrink during a run (the thresholds it mirrors
//! are monotone non-increasing); labels of pruned nodes are left untouched.
//!
//! ## Label continuation
//!
//! The engine records its settlement order. When the next consumer asks for
//! the *same* search (same source, goal, and graph version — e.g. CPLC
//! continuing exactly where IOR's converged run stopped), the settled
//! prefix **replays** from the retained label array and expansion resumes
//! from the retained heap, instead of re-running from a cold heap.
//!
//! When obstacles were loaded in between (version advanced, but nothing
//! was removed — tracked via [`VisGraph::shape_epoch`]), the engine
//! **reseeds**: obstacles only ever lengthen paths, so every label whose
//! witness path avoids the newly added rectangles is still exact and
//! re-enters the heap as a seed; only invalidated labels are re-discovered
//! through relaxation. Both warm paths produce the same settlement
//! sequence as a cold start on the final graph.
//!
//! When the *goal* changed as well (a trajectory session moving to its
//! next leg, or an odist call toward a moved target), the engine
//! **retargets**: settled distances are exact regardless of the heuristic
//! that ordered their settlement, so surviving labels are simply re-keyed
//! by `d + h_new` and expansion continues toward the new goal.
//!
//! The engine snapshots the graph version at preparation: advancing it
//! after a structural change is a logic bug and panics in debug builds.
//!
//! The engine is **reusable**: [`DijkstraEngine::prepare`] rewinds it for a
//! new run while keeping the label arrays, the heap and the relaxation
//! scratch buffer allocated. A query workspace holds one engine and
//! prepares it once per traversal instead of allocating a fresh engine per
//! run — the number of times retained capacity was reused is reported
//! through [`DijkstraEngine::reuses`].

// lint:allow-file(no-panic-in-query-path[index]): dist/settled/heap arrays are resized to the graph's node count on every reseed; node ids are dense and audited under sanitize-invariants
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use conn_geom::{OrdF64, Point, Rect, Segment};

use crate::graph::{NodeId, VisGraph};

const NO_PRED: u32 = u32::MAX;

/// Heuristic target of a goal-directed search. Every variant is an
/// admissible, consistent Euclidean lower bound on the remaining obstructed
/// distance (see the module docs), so settled distances are exact in every
/// mode.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub enum Goal {
    /// Blind Dijkstra: `h ≡ 0`.
    #[default]
    None,
    /// Point-to-point search: `h(v) = ‖v, target‖`.
    Point(Point),
    /// Search toward a query segment: `h(v) = mindist(v, segment)` — used
    /// by IOR (both endpoints lie on the segment) and CPLC (a control
    /// point's best value anywhere on `q` is `d(v) + mindist(v, q)`).
    Segment(Segment),
}

impl Goal {
    /// The heuristic value at `p`.
    #[inline]
    pub fn h(&self, p: Point) -> f64 {
        match self {
            Goal::None => 0.0,
            Goal::Point(t) => p.dist(*t),
            Goal::Segment(s) => s.dist_to_point(p),
        }
    }
}

/// How [`DijkstraEngine::ensure_prepared`] bound the engine to its search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prep {
    /// Fresh search: labels cleared, heap holds only the source.
    Cold,
    /// Same source, goal and graph version: the settled prefix replays from
    /// the retained labels; expansion continues from the retained heap,
    /// under the retained expansion bound if the run was bounded.
    Replayed,
    /// Obstacles were added since the last run: labels whose witness paths
    /// avoid the new rectangles were kept as exact seeds, the rest were
    /// invalidated and will be re-discovered.
    Reseeded,
    /// Same source but a *different goal* (and possibly new obstacles):
    /// surviving labels were re-keyed under the new heuristic and re-enter
    /// the heap as exact seeds — the cross-leg warm path of a trajectory
    /// session, and the moving-target path of repeated odist calls.
    Retargeted,
}

/// Single-source shortest-path engine with incremental settlement.
#[derive(Debug, Default)]
pub struct DijkstraEngine {
    src: NodeId,
    dist: Vec<f64>,
    pred: Vec<u32>,
    settled: Vec<bool>,
    /// Keyed by `f = d + h`; `d` is read back from `dist` at pop time.
    heap: BinaryHeap<(Reverse<OrdF64>, u32)>,
    version: u64,
    shape_epoch: u64,
    goal: Goal,
    /// Expansion bound on `f`; candidates above it are never pushed.
    bound: f64,
    /// True once `set_bound` tightened below ∞. A bounded run's labels are
    /// incomplete beyond the bound, so a replayed continuation keeps the
    /// retained bound (it may only shrink further), and reseeding keeps
    /// only the settled labels, which stay exact regardless of the bound.
    tightened: bool,
    /// Settlement order `(node, d)` — the replay tape of a continuation.
    settle_log: Vec<(u32, f64)>,
    /// Next `settle_log` entry to replay; equals `settle_log.len()` while
    /// expanding live.
    cursor: usize,
    /// Relaxation scratch (edges of the node being settled).
    edge_scratch: Vec<(u32, f64)>,
    /// Exact labels `(node, d, pred)` re-entered by the last reseed, in
    /// predecessor-first order. A seed's distance is exact whether or not
    /// the subsequent run ever pops it (relaxation cannot improve an
    /// optimal label), so the *next* reseed must classify these alongside
    /// the settle log — dropping them would lose the source itself when a
    /// run stops at its target before re-popping the seeds.
    seeds: Vec<(u32, f64, u32)>,
    /// Deduplication stamps for the reseed classification pass.
    mark: Vec<u32>,
    mark_gen: u32,
    /// Runs whose label arrays fit in already-allocated capacity.
    reuses: u64,
    /// Warm continuations served (settled prefix replayed).
    continuations: u64,
    /// Warm reseeds served (labels repaired after obstacle loads).
    reseeds: u64,
    /// Warm retargets served (labels re-keyed under a new goal).
    retargets: u64,
    /// Labels dropped by reseed classification (lifetime; the
    /// `labels_invalidated` metric of live-scene deltas).
    labels_invalidated: u64,
    prepared: bool,
}

impl DijkstraEngine {
    /// Prepares a blind run from `src` against the graph's current version.
    pub fn new(g: &VisGraph, src: NodeId) -> Self {
        let mut e = DijkstraEngine::default();
        e.prepare(g, src);
        e
    }

    /// Rewinds the engine for a fresh blind run from `src`, reusing the
    /// label arrays, heap and scratch allocations of previous runs.
    pub fn prepare(&mut self, g: &VisGraph, src: NodeId) {
        self.prepare_directed(g, src, Goal::None)
    }

    /// Rewinds the engine for a fresh run from `src` toward `goal`.
    pub fn prepare_directed(&mut self, g: &VisGraph, src: NodeId, goal: Goal) {
        let n = g.capacity();
        if self.prepared && self.dist.capacity() >= n {
            self.reuses += 1;
        }
        self.prepared = true;
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.pred.clear();
        self.pred.resize(n, NO_PRED);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
        self.settle_log.clear();
        self.seeds.clear();
        self.cursor = 0;
        self.version = g.version();
        self.shape_epoch = g.shape_epoch();
        self.goal = goal;
        self.bound = f64::INFINITY;
        self.tightened = false;
        self.src = src;
        self.dist[src.index()] = 0.0;
        let f0 = goal.h(g.node_pos(src));
        self.heap.push((Reverse(OrdF64::new(f0)), src.0));
    }

    /// Warm-or-cold preparation: replays the retained search when `src`,
    /// `goal` and the graph are unchanged, reseeds the labels when the
    /// graph only *grew* (obstacles and/or point nodes added) — re-keying
    /// them under the new goal when it changed — and falls back to
    /// [`Self::prepare_directed`] otherwise (always, when `allow_warm` is
    /// false). Settled labels are exact shortest-path distances regardless
    /// of the heuristic that ordered their settlement, so a goal change
    /// alone never invalidates them: the reseed pass simply re-enters
    /// every surviving label into the heap keyed by `d + h_new`.
    pub fn ensure_prepared(
        &mut self,
        g: &VisGraph,
        src: NodeId,
        goal: Goal,
        allow_warm: bool,
    ) -> Prep {
        if allow_warm
            && self.prepared
            && self.src == src
            && self.shape_epoch == g.shape_epoch()
            && self.version <= g.version()
        {
            self.reuses += 1; // every warm path runs on retained capacity
            if self.goal == goal && self.version == g.version() {
                // A bounded (`tightened`) run's labels are incomplete
                // beyond its bound, so the replayed continuation *keeps*
                // the retained bound instead of resetting it — the tape
                // and heap are exactly a bounded run's state, and the
                // consumer's own bound may only shrink it further (the
                // IOR→CPLC handoff caps both sides with the same
                // incumbent bound, so nothing is lost).
                self.cursor = 0;
                self.continuations += 1;
                return Prep::Replayed;
            }
            let retargeted = self.goal != goal;
            self.goal = goal;
            self.reseed(g);
            if retargeted {
                self.retargets += 1;
                return Prep::Retargeted;
            }
            self.reseeds += 1;
            return Prep::Reseeded;
        }
        self.prepare_directed(g, src, goal);
        Prep::Cold
    }

    /// Warm restart after graph growth (and/or a goal change): keeps every
    /// exact label whose witness path avoids the rectangles added since the
    /// snapshot (obstacles only lengthen paths; point-node additions change
    /// nothing) and re-enters them into the heap as seeds keyed by the
    /// *current* goal, so re-settling them performs no label convergence
    /// and almost no pushes. Invalidated and new nodes are re-discovered
    /// through ordinary relaxation.
    ///
    /// The exact-label set is the previous reseed's surviving seeds — a
    /// seed stays exact whether or not the run re-popped it — plus the
    /// nodes the run settled. Classification walks seeds first, then the
    /// settle log: within each list predecessors precede dependents, and a
    /// settled node's predecessor is either an earlier-settled node or a
    /// seed, so validity can be inherited along the predecessor chain
    /// (`settled` doubles as the "witness still valid" marker during the
    /// pass).
    fn reseed(&mut self, g: &VisGraph) {
        self.reseed_inner(g, None)
    }

    /// Warm restart after an obstacle **removal** — the "paths only
    /// shorten" counterpart of the growth reseed behind
    /// [`DijkstraEngine::ensure_prepared`].
    ///
    /// Removing a rectangle `R` can only *shorten* obstructed distances,
    /// and any label that improves must route its new witness path through
    /// `R`'s footprint: a path avoiding `R` entirely was already available
    /// before the removal, so it cannot beat the old exact label. Any path
    /// through `R` is at least `mindist(src, R) + mindist(u, R)` long
    /// (each leg is at best a straight line to/from the crossing point).
    /// A settled label with `mindist(src, R) + mindist(u, R) ≥ d(u)`
    /// therefore cannot improve and is kept as exact; labels inside that
    /// **shadow** are invalidated and re-discovered through ordinary
    /// relaxation — as are the labels of the removed rectangle's own (now
    /// dead) corner nodes and every label whose witness chain passes
    /// through a dropped one.
    ///
    /// Contract: call immediately after `VisGraph::remove_obstacle` on the
    /// same rectangle, with no other structural mutation in between (node
    /// slots freed by the removal must not have been rebound — the
    /// classification reads current node positions). Falls back to a cold
    /// prepare when the engine holds no compatible search (different or
    /// dead source, or never prepared).
    pub fn reseed_after_removal(
        &mut self,
        g: &VisGraph,
        src: NodeId,
        goal: Goal,
        removed: &Rect,
    ) -> Prep {
        if self.prepared && self.src == src && g.is_alive(src) && self.version <= g.version() {
            self.reuses += 1;
            self.goal = goal;
            self.reseed_inner(g, Some(removed));
            self.reseeds += 1;
            return Prep::Reseeded;
        }
        self.prepare_directed(g, src, goal);
        Prep::Cold
    }

    /// Lifetime count of labels dropped by reseed classification (growth
    /// and removal passes). Monotone; callers diff marks per window, like
    /// the other warm-path counters.
    pub fn labels_invalidated(&self) -> u64 {
        self.labels_invalidated
    }

    fn reseed_inner(&mut self, g: &VisGraph, removed: Option<&Rect>) {
        let n = g.capacity();
        if self.dist.len() < n {
            // newly added obstacle corners / point nodes
            self.dist.resize(n, f64::INFINITY);
            self.pred.resize(n, NO_PRED);
            self.settled.resize(n, false);
        }
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.mark_gen = self.mark_gen.wrapping_add(1);
        if self.mark_gen == 0 {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.mark_gen = 1;
        }
        let new_rects = g.rects_since(self.version);
        // removal shadow: the source leg of the bound is loop-invariant
        let shadow_src = removed.map(|r| r.mindist_point(g.node_pos(self.src)));
        let old_seeds = std::mem::take(&mut self.seeds);
        let old_log = std::mem::take(&mut self.settle_log);
        let mut kept: Vec<(u32, f64, u32)> = Vec::with_capacity(old_seeds.len() + old_log.len());
        for i in 0..old_seeds.len() + old_log.len() {
            let (u, d, p) = if i < old_seeds.len() {
                old_seeds[i]
            } else {
                let (u, d) = old_log[i - old_seeds.len()];
                // a seed that was re-popped appears in both lists; the
                // first pass already classified it
                if self.mark[u as usize] == self.mark_gen {
                    continue;
                }
                (u, d, self.pred[u as usize])
            };
            let ui = u as usize;
            self.mark[ui] = self.mark_gen;
            let ok = if u == self.src.0 {
                true
            } else {
                let mut keep = p != NO_PRED && self.settled[p as usize] && {
                    let seg = Segment::new(g.node_pos(NodeId(p)), g.node_pos(NodeId(u)));
                    !new_rects.iter().any(|(_, r)| r.blocks(&seg))
                };
                if keep {
                    if let (Some(r), Some(ds)) = (removed, shadow_src) {
                        // dead nodes (the removed rect's corners) drop, and
                        // a label inside the removal shadow may improve —
                        // drop it too (conservatively, with float slack);
                        // everything else is provably still exact
                        keep = g.is_alive(NodeId(u)) && {
                            let shadow = ds + r.mindist_point(g.node_pos(NodeId(u)));
                            shadow > d + 1e-9 * d.max(1.0)
                        };
                    }
                }
                keep
            };
            self.settled[ui] = ok;
            if ok {
                kept.push((u, d, p));
            } else {
                self.labels_invalidated += 1;
            }
        }
        self.dist.iter_mut().for_each(|d| *d = f64::INFINITY);
        self.pred.iter_mut().for_each(|p| *p = NO_PRED);
        self.settled.iter_mut().for_each(|s| *s = false);
        self.heap.clear();
        for &(u, d, p) in &kept {
            let ui = u as usize;
            self.dist[ui] = d;
            self.pred[ui] = p;
            let f = d + self.goal.h(g.node_pos(NodeId(u)));
            self.heap.push((Reverse(OrdF64::new(f)), u));
        }
        self.settle_log = old_log;
        self.settle_log.clear();
        self.cursor = 0;
        self.version = g.version();
        // a removal advanced the shape epoch; the growth path holds it
        // still, so the resync is a no-op there
        self.shape_epoch = g.shape_epoch();
        self.bound = f64::INFINITY;
        self.tightened = false;
        self.seeds = kept;
    }

    /// How many [`DijkstraEngine::prepare`] calls reused retained capacity
    /// (the `heap_reuses` metric of the query engine).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Warm continuations served so far (the `label_continuations` metric).
    pub fn continuations(&self) -> u64 {
        self.continuations
    }

    /// Warm reseeds served so far (the `label_reseeds` metric).
    pub fn reseeds(&self) -> u64 {
        self.reseeds
    }

    /// Warm goal retargets served so far (the `label_retargets` metric).
    pub fn retargets(&self) -> u64 {
        self.retargets
    }

    /// The search's source node.
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// The active heuristic.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// Tightens the expansion bound on `f = d + h`: candidates above it are
    /// pruned before they are pushed (and before their overlay sight tests
    /// are paid), and [`Self::next_settled`] reports exhaustion once the
    /// heap minimum exceeds it. Bounds mirror monotone non-increasing
    /// pruning thresholds, so raising the bound mid-run is a logic error —
    /// the engine keeps the tighter of the two.
    pub fn set_bound(&mut self, bound: f64) {
        if bound < self.bound {
            self.bound = bound;
            self.tightened = true;
        }
    }

    /// The current expansion bound (∞ when unbounded).
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Settles and returns the next node in ascending `f = d + h` order
    /// (plain ascending-distance order under [`Goal::None`]), or `None`
    /// when the part of the graph reachable within the bound is exhausted.
    /// Replays the retained settlement prefix first when the engine was
    /// warm-prepared.
    pub fn next_settled(&mut self, g: &mut VisGraph) -> Option<(NodeId, f64)> {
        debug_assert_eq!(
            self.version,
            g.version(),
            "graph changed under a running Dijkstra"
        );
        if self.cursor < self.settle_log.len() {
            let (u, d) = self.settle_log[self.cursor];
            self.cursor += 1;
            return Some((NodeId(u), d));
        }
        while let Some(&(Reverse(OrdF64(f)), u)) = self.heap.peek() {
            if f > self.bound {
                // min-key over the bound ⇒ every remaining key is too; the
                // entry stays in the heap so the answer is stable if asked
                // again
                return None;
            }
            self.heap.pop();
            let ui = u as usize;
            if self.settled[ui] {
                continue;
            }
            let d = self.dist[ui];
            if conn_geom::sanitize::enabled() {
                self.audit_settlement(g, u, d);
            }
            self.settled[ui] = true;
            self.settle_log.push((u, d));
            self.cursor = self.settle_log.len();
            // relax (edge list copied into retained scratch — no per-settle
            // allocation once the buffer has grown to the working size);
            // candidates that already settled, or that lie outside the
            // bound's ellipse, are filtered before their sight test /
            // scratch copy, since relaxing them is a no-op anyway
            let mut edges = std::mem::take(&mut self.edge_scratch);
            edges.clear();
            let settled = &self.settled;
            let goal = self.goal;
            let bound = self.bound;
            let upos = g.node_pos(NodeId(u));
            // a neighbor farther than `bound − d` can never settle within
            // the bound (h ≥ 0), so a radius-complete adjacency cache
            // suffices — and costs local-density work to build, not
            // whole-graph work
            let radius = if bound.is_finite() {
                bound - d
            } else {
                f64::INFINITY
            };
            g.neighbors_into_ranged(
                NodeId(u),
                &mut edges,
                |v, vpos| !settled[v as usize] && d + upos.dist(vpos) + goal.h(vpos) <= bound,
                radius,
            );
            for &(v, w) in &edges {
                let vi = v as usize;
                if self.settled[vi] {
                    continue;
                }
                let nd = d + w;
                if nd < self.dist[vi] {
                    let fv = nd + goal.h(g.node_pos(NodeId(v)));
                    if fv <= bound {
                        self.dist[vi] = nd;
                        self.pred[vi] = u;
                        self.heap.push((Reverse(OrdF64::new(fv)), v));
                    }
                }
            }
            self.edge_scratch = edges;
            return Some((NodeId(u), d));
        }
        None
    }

    /// Sanitizer audit of a settlement about to be recorded:
    ///
    /// * the label is a valid distance (no NaN, no negative);
    /// * **admissibility** — an obstructed distance dominates the Euclidean
    ///   one, so `d(v) ≥ ‖src, v‖` (with relative slack);
    /// * **settle-order monotonicity** — nodes pop in ascending
    ///   `f = d + h`, the property every early-exit lemma (IOR's bound,
    ///   CPLC's Lemma 7, RLU's `RLMAX`) rests on.
    ///
    /// Runs only when the `sanitize-invariants` runtime switch is on.
    fn audit_settlement(&self, g: &VisGraph, u: u32, d: f64) {
        use conn_geom::sanitize;
        let ctx = "DijkstraEngine settle";
        sanitize::audit_distance(ctx, d);
        let pos = g.node_pos(NodeId(u));
        let straight = g.node_pos(self.src).dist(pos);
        if d + 1e-6 * straight.max(1.0) < straight {
            sanitize::violation(
                ctx,
                &format!("node {u}: label {d} below Euclidean lower bound {straight}"),
            );
        }
        let f = d + self.goal.h(pos);
        if let Some(&(pu, pd)) = self.settle_log.last() {
            let pf = pd + self.goal.h(g.node_pos(NodeId(pu)));
            if f + 1e-9 * pf.abs().max(1.0) < pf {
                sanitize::violation(
                    ctx,
                    &format!(
                        "settle order not ascending in f: node {u} f={f} after node {pu} f={pf}"
                    ),
                );
            }
        }
    }

    /// Advances until `target` settles; returns its distance (∞ if
    /// unreachable — or unreachable within the current bound).
    pub fn run_until_settled(&mut self, g: &mut VisGraph, target: NodeId) -> f64 {
        while !self.settled[target.index()] {
            if self.next_settled(g).is_none() {
                return f64::INFINITY;
            }
        }
        self.dist[target.index()]
    }

    /// Settles every node reachable within the bound.
    pub fn run_all(&mut self, g: &mut VisGraph) {
        while self.next_settled(g).is_some() {}
    }

    /// Distance of a *settled* node; `None` if not settled (yet).
    pub fn settled_dist(&self, n: NodeId) -> Option<f64> {
        self.settled[n.index()].then(|| self.dist[n.index()])
    }

    /// Predecessor on the shortest path (the `u` of paper Lemmas 5/6).
    pub fn predecessor(&self, n: NodeId) -> Option<NodeId> {
        let p = self.pred[n.index()];
        (p != NO_PRED).then_some(NodeId(p))
    }

    /// Shortest path from the source to `n` as node ids (source first).
    /// Empty when `n` is unreachable or unsettled.
    pub fn path_to(&self, n: NodeId) -> Vec<NodeId> {
        if !self.settled[n.index()] {
            return Vec::new();
        }
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.predecessor(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use conn_geom::{Point, Rect};

    /// One obstacle between two points: the shortest path must round a
    /// corner, and its length is analytically checkable.
    #[test]
    fn detour_around_a_square() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let mut d = DijkstraEngine::new(&g, s);
        let got = d.run_until_settled(&mut g, t);
        // detour via (90,100) and (110,100):
        let want = Point::new(0.0, 50.0).dist(Point::new(90.0, 100.0))
            + 20.0
            + Point::new(110.0, 100.0).dist(Point::new(200.0, 50.0));
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        // path passes exactly those corners
        let path: Vec<Point> = d.path_to(t).iter().map(|&n| g.node_pos(n)).collect();
        assert_eq!(path.len(), 4);
        assert_eq!(path[1], Point::new(90.0, 100.0));
        assert_eq!(path[2], Point::new(110.0, 100.0));
    }

    #[test]
    fn free_space_is_straight_line() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(30.0, 40.0), NodeKind::Endpoint);
        let mut d = DijkstraEngine::new(&g, s);
        assert_eq!(d.run_until_settled(&mut g, t), 50.0);
        assert_eq!(d.path_to(t).len(), 2);
    }

    #[test]
    fn settlement_order_is_ascending() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 1..20 {
            g.add_point(
                Point::new(i as f64 * 7.0, (i % 5) as f64 * 11.0),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(Rect::new(40.0, -10.0, 50.0, 30.0));
        let mut d = DijkstraEngine::new(&g, s);
        let mut prev = -1.0;
        while let Some((_, dist)) = d.next_settled(&mut g) {
            assert!(dist >= prev);
            prev = dist;
        }
    }

    /// Under a goal, settlement is ascending in `f = d + h`, and every
    /// settled distance matches blind Dijkstra bit for bit.
    #[test]
    fn goal_directed_settles_in_f_order_with_exact_distances() {
        let build = || {
            let mut g = VisGraph::new(50.0);
            let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
            for i in 1..25 {
                g.add_point(
                    Point::new((i * 37 % 200) as f64, (i * 53 % 150) as f64),
                    NodeKind::DataPoint,
                );
            }
            g.add_obstacle(Rect::new(40.0, 20.0, 70.0, 60.0));
            g.add_obstacle(Rect::new(120.0, 80.0, 160.0, 120.0));
            (g, s)
        };
        let (mut g, s) = build();
        let mut blind = DijkstraEngine::new(&g, s);
        blind.run_all(&mut g);

        let goal = Goal::Point(Point::new(190.0, 140.0));
        let (mut g2, s2) = build();
        let mut astar = DijkstraEngine::default();
        astar.prepare_directed(&g2, s2, goal);
        let mut prev_f = -1.0;
        while let Some((v, dv)) = astar.next_settled(&mut g2) {
            let f = dv + goal.h(g2.node_pos(v));
            assert!(f >= prev_f - 1e-9, "f-order violated: {f} after {prev_f}");
            prev_f = f;
            let want = blind.settled_dist(v).expect("blind settled everything");
            assert_eq!(dv.to_bits(), want.to_bits(), "distance diverged at {v:?}");
        }
    }

    #[test]
    fn prepared_engine_matches_fresh_engine() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let mut fresh = DijkstraEngine::new(&g, s);
        let want = fresh.run_until_settled(&mut g, t);

        let mut reused = DijkstraEngine::default();
        for _ in 0..3 {
            reused.prepare(&g, s);
            let got = reused.run_until_settled(&mut g, t);
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(reused.reuses(), 2, "second and third runs reuse labels");
    }

    /// A replayed continuation serves the identical settlement sequence the
    /// original run produced, then keeps expanding from the retained heap.
    #[test]
    fn replay_continuation_matches_original_sequence() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        g.add_obstacle(Rect::new(140.0, 30.0, 160.0, 130.0));
        let goal = Goal::Segment(Segment::new(Point::new(0.0, 50.0), Point::new(200.0, 50.0)));

        let mut cold = DijkstraEngine::default();
        cold.prepare_directed(&g, s, goal);
        let mut cold_seq = Vec::new();
        while let Some((v, d)) = cold.next_settled(&mut g) {
            cold_seq.push((v, d.to_bits()));
        }

        let mut warm = DijkstraEngine::default();
        assert_eq!(warm.ensure_prepared(&g, s, goal, true), Prep::Cold);
        // consume only a prefix (as IOR does: stop once S and E settle)
        warm.run_until_settled(&mut g, t);
        // same graph, same source, same goal → replay
        assert_eq!(warm.ensure_prepared(&g, s, goal, true), Prep::Replayed);
        let mut warm_seq = Vec::new();
        while let Some((v, d)) = warm.next_settled(&mut g) {
            warm_seq.push((v, d.to_bits()));
        }
        assert_eq!(cold_seq, warm_seq);
        assert_eq!(warm.continuations(), 1);
    }

    /// Reseeding after obstacle loads matches a cold start on the final
    /// graph: identical settlement set and bit-identical distances.
    #[test]
    fn reseed_matches_cold_start_after_obstacle_load() {
        let base = Rect::new(60.0, 20.0, 90.0, 70.0);
        let late = Rect::new(130.0, -20.0, 150.0, 55.0);
        let goal = Goal::Point(Point::new(200.0, 0.0));

        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(200.0, 0.0), NodeKind::Endpoint);
        for i in 0..12 {
            g.add_point(
                Point::new((i * 31 % 210) as f64, (i * 17 % 90) as f64 - 20.0),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(base);
        let mut warm = DijkstraEngine::default();
        warm.ensure_prepared(&g, s, goal, true);
        warm.run_until_settled(&mut g, t);
        g.add_obstacle(late); // version advances, shape does not
        assert_eq!(warm.ensure_prepared(&g, s, goal, true), Prep::Reseeded);
        warm.run_all(&mut g);

        let mut cold = DijkstraEngine::default();
        cold.prepare_directed(&g, s, goal);
        cold.run_all(&mut g);

        for v in g.node_ids() {
            let a = warm.settled_dist(v);
            let b = cold.settled_dist(v);
            assert_eq!(a.is_some(), b.is_some(), "settled set diverged at {v:?}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.to_bits(), b.to_bits(), "distance diverged at {v:?}");
            }
        }
        assert_eq!(warm.reseeds(), 1);
    }

    /// Retargeting the goal keeps every settled label (they are exact
    /// distances, independent of the heuristic) and matches a cold start
    /// under the new goal bit for bit — with and without obstacle loads in
    /// between.
    #[test]
    fn retarget_matches_cold_start_under_new_goal() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 0..14 {
            g.add_point(
                Point::new((i * 37 % 220) as f64, (i * 19 % 130) as f64 - 30.0),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(Rect::new(50.0, -10.0, 80.0, 60.0));
        let goal_a = Goal::Point(Point::new(200.0, 0.0));
        let goal_b = Goal::Segment(Segment::new(Point::new(0.0, 90.0), Point::new(220.0, 90.0)));

        let mut warm = DijkstraEngine::default();
        assert_eq!(warm.ensure_prepared(&g, s, goal_a, true), Prep::Cold);
        warm.run_all(&mut g);
        // same graph, new goal → retarget (no rects to test witnesses against)
        assert_eq!(warm.ensure_prepared(&g, s, goal_b, true), Prep::Retargeted);
        warm.run_all(&mut g);
        // load an obstacle AND change the goal back → retarget with reseeding
        g.add_obstacle(Rect::new(120.0, 20.0, 150.0, 110.0));
        assert_eq!(warm.ensure_prepared(&g, s, goal_a, true), Prep::Retargeted);
        warm.run_all(&mut g);
        assert_eq!(warm.retargets(), 2);

        let mut cold = DijkstraEngine::default();
        cold.prepare_directed(&g, s, goal_a);
        cold.run_all(&mut g);
        for v in g.node_ids() {
            let (a, b) = (warm.settled_dist(v), cold.settled_dist(v));
            assert_eq!(a.is_some(), b.is_some(), "settled set diverged at {v:?}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.to_bits(), b.to_bits(), "distance diverged at {v:?}");
            }
        }
    }

    /// Adding point nodes (no removal) keeps the warm path available: the
    /// new nodes are discovered through relaxation and every pre-existing
    /// label stays bitwise exact.
    #[test]
    fn point_additions_preserve_warm_labels() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(30.0, -20.0, 50.0, 40.0));
        let t1 = g.add_point(Point::new(100.0, 0.0), NodeKind::DataPoint);
        let mut warm = DijkstraEngine::default();
        assert_eq!(warm.ensure_prepared(&g, s, Goal::None, true), Prep::Cold);
        warm.run_all(&mut g);
        let d1 = warm.settled_dist(t1).unwrap();
        // add a new endpoint and a new data point — shape epoch must hold
        let e2 = g.add_point(Point::new(120.0, 50.0), NodeKind::Endpoint);
        let t2 = g.add_point(Point::new(60.0, 60.0), NodeKind::DataPoint);
        assert_eq!(
            warm.ensure_prepared(&g, s, Goal::None, true),
            Prep::Reseeded
        );
        warm.run_all(&mut g);
        assert_eq!(warm.settled_dist(t1).unwrap().to_bits(), d1.to_bits());
        let mut cold = DijkstraEngine::default();
        cold.prepare(&g, s);
        cold.run_all(&mut g);
        for v in [t1, t2, e2] {
            assert_eq!(
                warm.settled_dist(v).unwrap().to_bits(),
                cold.settled_dist(v).unwrap().to_bits()
            );
        }
    }

    /// Regression: chained warm restarts must not lose the seeds a run
    /// never re-popped. A retargeted run that stops at its target leaves
    /// the source (and most seeds) unsettled in the log; the next reseed
    /// must still classify them — dropping them used to empty the heap and
    /// report ∞ for reachable targets.
    #[test]
    fn chained_retargets_keep_unpopped_seeds() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(100.0, 0.0), NodeKind::DataPoint);
        let far = g.add_point(Point::new(60.0, 0.0), NodeKind::DataPoint);
        let mut e = DijkstraEngine::default();
        assert_eq!(
            e.ensure_prepared(&g, s, Goal::Point(Point::new(60.0, 0.0)), true),
            Prep::Cold
        );
        assert_eq!(e.run_until_settled(&mut g, far), 40.0);
        // two more targets, each a retarget; free space, so every distance
        // is the straight line
        let t1 = g.add_point(Point::new(10.0, 0.0), NodeKind::DataPoint);
        assert_eq!(
            e.ensure_prepared(&g, s, Goal::Point(Point::new(10.0, 0.0)), true),
            Prep::Retargeted
        );
        assert_eq!(e.run_until_settled(&mut g, t1), 90.0);
        let t2 = g.add_point(Point::new(104.0, 3.0), NodeKind::DataPoint);
        assert_eq!(
            e.ensure_prepared(&g, s, Goal::Point(Point::new(104.0, 3.0)), true),
            Prep::Retargeted
        );
        assert_eq!(e.run_until_settled(&mut g, t2), 5.0);
    }

    /// A bounded (tightened) run replays under its *retained* bound —
    /// within it, labels match an unbounded cold run bitwise; beyond it,
    /// the engine reports exhaustion. A graph change then reseeds, the
    /// bound resets, and full coverage is recovered.
    #[test]
    fn tightened_run_replays_under_retained_bound_then_reseeds() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 1..20 {
            g.add_point(
                Point::new((i * 41 % 260) as f64, (i * 23 % 170) as f64),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(Rect::new(60.0, 10.0, 90.0, 100.0));
        let bound = 120.0;
        let mut warm = DijkstraEngine::default();
        assert_eq!(warm.ensure_prepared(&g, s, Goal::None, true), Prep::Cold);
        warm.set_bound(bound);
        warm.run_all(&mut g);
        assert_eq!(
            warm.ensure_prepared(&g, s, Goal::None, true),
            Prep::Replayed
        );
        assert_eq!(warm.bound(), bound, "replay keeps the retained bound");
        warm.run_all(&mut g);
        let mut cold = DijkstraEngine::default();
        cold.prepare(&g, s);
        cold.run_all(&mut g);
        for v in g.node_ids() {
            match (warm.settled_dist(v), cold.settled_dist(v)) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (None, Some(b)) => assert!(b > bound - 1e-9, "{v:?} missing below the bound"),
                (None, None) => {}
                (Some(_), None) => panic!("bounded replay settled a node cold missed"),
            }
        }
        // a graph change reseeds; the bound resets and coverage completes
        g.add_obstacle(Rect::new(200.0, 120.0, 230.0, 150.0));
        assert_eq!(
            warm.ensure_prepared(&g, s, Goal::None, true),
            Prep::Reseeded
        );
        warm.run_all(&mut g);
        let mut cold2 = DijkstraEngine::default();
        cold2.prepare(&g, s);
        cold2.run_all(&mut g);
        for v in g.node_ids() {
            let (a, b) = (warm.settled_dist(v), cold2.settled_dist(v));
            assert_eq!(a.is_some(), b.is_some(), "settled set diverged at {v:?}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.to_bits(), b.to_bits(), "distance diverged at {v:?}");
            }
        }
    }

    /// The removal reseed matches a cold start on the post-removal graph:
    /// identical settlement set, bit-identical distances.
    #[test]
    fn removal_reseed_matches_cold_start() {
        let gone = Rect::new(90.0, 0.0, 110.0, 100.0);
        let stays = Rect::new(150.0, 20.0, 170.0, 90.0);

        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        for i in 0..12 {
            g.add_point(
                Point::new((i * 31 % 210) as f64, (i * 17 % 90) as f64 - 20.0),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(gone);
        g.add_obstacle(stays);
        let mut warm = DijkstraEngine::default();
        warm.ensure_prepared(&g, s, Goal::None, true);
        warm.run_all(&mut g);

        g.remove_obstacle(&gone).expect("live obstacle");
        assert_eq!(
            warm.reseed_after_removal(&g, s, Goal::None, &gone),
            Prep::Reseeded
        );
        assert!(warm.labels_invalidated() > 0, "shadowed labels must drop");
        warm.run_all(&mut g);

        let mut cold = DijkstraEngine::default();
        cold.prepare(&g, s);
        cold.run_all(&mut g);
        for v in g.node_ids() {
            let (a, b) = (warm.settled_dist(v), cold.settled_dist(v));
            assert_eq!(a.is_some(), b.is_some(), "settled set diverged at {v:?}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.to_bits(), b.to_bits(), "distance diverged at {v:?}");
            }
        }
    }

    /// The shadow bound is surgical: removing a far-away rectangle drops
    /// only its own four (dead) corner labels — every label outside the
    /// shadow survives as an exact seed.
    #[test]
    fn removal_shadow_bounds_invalidated_labels() {
        let far = Rect::new(500.0, 0.0, 520.0, 40.0);
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 0..10 {
            g.add_point(
                Point::new((i * 13 % 120) as f64, (i * 29 % 100) as f64),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(far);
        let mut warm = DijkstraEngine::default();
        warm.ensure_prepared(&g, s, Goal::None, true);
        warm.run_all(&mut g);

        let before = warm.labels_invalidated();
        g.remove_obstacle(&far).unwrap();
        assert_eq!(
            warm.reseed_after_removal(&g, s, Goal::None, &far),
            Prep::Reseeded
        );
        assert_eq!(
            warm.labels_invalidated() - before,
            4,
            "only the dead corners are in the shadow of a far removal"
        );
        warm.run_all(&mut g);
        let mut cold = DijkstraEngine::default();
        cold.prepare(&g, s);
        cold.run_all(&mut g);
        for v in g.node_ids() {
            assert_eq!(
                warm.settled_dist(v).unwrap().to_bits(),
                cold.settled_dist(v).unwrap().to_bits()
            );
        }
    }

    /// Interleaved growth and removal reseeds across one warm engine keep
    /// matching cold starts at every step.
    #[test]
    fn interleaved_growth_and_removal_reseeds_stay_exact() {
        let r1 = Rect::new(60.0, 20.0, 90.0, 70.0);
        let r2 = Rect::new(130.0, -20.0, 150.0, 55.0);
        let r3 = Rect::new(40.0, -40.0, 70.0, 5.0);
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 0..9 {
            g.add_point(
                Point::new((i * 43 % 190) as f64, (i * 23 % 110) as f64 - 30.0),
                NodeKind::DataPoint,
            );
        }
        let mut warm = DijkstraEngine::default();
        let check = |warm: &mut DijkstraEngine, g: &mut VisGraph| {
            warm.run_all(g);
            let mut cold = DijkstraEngine::default();
            cold.prepare(g, warm.source());
            cold.run_all(g);
            for v in g.node_ids() {
                let (a, b) = (warm.settled_dist(v), cold.settled_dist(v));
                assert_eq!(a.is_some(), b.is_some(), "settled set diverged at {v:?}");
                if let (Some(a), Some(b)) = (a, b) {
                    assert_eq!(a.to_bits(), b.to_bits(), "distance diverged at {v:?}");
                }
            }
        };
        assert_eq!(warm.ensure_prepared(&g, s, Goal::None, true), Prep::Cold);
        check(&mut warm, &mut g);
        g.add_obstacle(r1);
        g.add_obstacle(r2);
        assert_eq!(
            warm.ensure_prepared(&g, s, Goal::None, true),
            Prep::Reseeded
        );
        check(&mut warm, &mut g);
        g.remove_obstacle(&r1).unwrap();
        assert_eq!(
            warm.reseed_after_removal(&g, s, Goal::None, &r1),
            Prep::Reseeded
        );
        check(&mut warm, &mut g);
        g.add_obstacle(r3);
        assert_eq!(
            warm.ensure_prepared(&g, s, Goal::None, true),
            Prep::Reseeded
        );
        check(&mut warm, &mut g);
        g.remove_obstacle(&r2).unwrap();
        assert_eq!(
            warm.reseed_after_removal(&g, s, Goal::None, &r2),
            Prep::Reseeded
        );
        check(&mut warm, &mut g);
    }

    /// Node churn (a transient data point removed and re-added in the same
    /// slot) must refuse warm continuation — the slot id aliases a
    /// different point.
    #[test]
    fn shape_change_forces_cold_prepare() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let p = g.add_point(Point::new(10.0, 10.0), NodeKind::DataPoint);
        let mut e = DijkstraEngine::default();
        assert_eq!(e.ensure_prepared(&g, s, Goal::None, true), Prep::Cold);
        e.run_all(&mut g);
        g.remove_node(p);
        let p2 = g.add_point(Point::new(700.0, 700.0), NodeKind::DataPoint);
        assert_eq!(p2.0, p.0, "slot must be reused for the aliasing to occur");
        assert_eq!(e.ensure_prepared(&g, s, Goal::None, true), Prep::Cold);
        let d = e.run_until_settled(&mut g, p2);
        assert!((d - Point::new(700.0, 700.0).norm()).abs() < 1e-9);
    }

    /// A bounded run prunes expansion beyond the bound but leaves every
    /// within-bound distance bit-identical to the unbounded run.
    #[test]
    fn bounded_run_is_exact_within_the_bound() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 1..30 {
            g.add_point(
                Point::new((i * 41 % 300) as f64, (i * 23 % 200) as f64),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(Rect::new(50.0, 10.0, 80.0, 120.0));
        let mut full = DijkstraEngine::new(&g, s);
        full.run_all(&mut g);

        let bound = 150.0;
        let mut bounded = DijkstraEngine::new(&g, s);
        bounded.set_bound(bound);
        bounded.run_all(&mut g);
        for v in g.node_ids() {
            match (bounded.settled_dist(v), full.settled_dist(v)) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (None, Some(b)) => assert!(b > bound - 1e-9, "{v:?} wrongly pruned at {b}"),
                (None, None) => {}
                (Some(_), None) => panic!("bounded settled a node the full run missed"),
            }
        }
    }

    /// OrdF64-heap audit: unreachable nodes and zero-length edges must not
    /// corrupt the heap invariant — settlement stays ascending, coincident
    /// nodes settle at the exact same distance, walled-in nodes never
    /// settle, and no key is ever NaN (OrdF64 debug-asserts that).
    #[test]
    fn heap_invariant_survives_zero_length_edges_and_unreachable_nodes() {
        let mut g = VisGraph::new(25.0);
        let s = g.add_point(Point::new(5.0, 5.0), NodeKind::Endpoint);
        // coincident pair → zero-length edge between them
        let c1 = g.add_point(Point::new(60.0, 5.0), NodeKind::DataPoint);
        let c2 = g.add_point(Point::new(60.0, 5.0), NodeKind::DataPoint);
        // a walled-in (unreachable) node
        let jail = g.add_point(Point::new(150.0, 150.0), NodeKind::DataPoint);
        g.add_obstacle(Rect::new(140.0, 140.0, 160.0, 145.0));
        g.add_obstacle(Rect::new(140.0, 155.0, 160.0, 160.0));
        g.add_obstacle(Rect::new(140.0, 140.0, 145.0, 160.0));
        g.add_obstacle(Rect::new(155.0, 140.0, 160.0, 160.0));
        let mut d = DijkstraEngine::new(&g, s);
        let mut prev = -1.0;
        let mut settled = 0;
        while let Some((_, dist)) = d.next_settled(&mut g) {
            assert!(dist.is_finite(), "settled an unreachable node");
            assert!(dist >= prev, "heap order corrupted: {dist} after {prev}");
            prev = dist;
            settled += 1;
        }
        assert!(settled >= 3, "source + coincident pair at minimum");
        let d1 = d.settled_dist(c1).unwrap();
        let d2 = d.settled_dist(c2).unwrap();
        assert_eq!(d1.to_bits(), d2.to_bits(), "zero-length edge broke ties");
        assert_eq!(d.settled_dist(jail), None);
        assert_eq!(d.run_until_settled(&mut g, jail), f64::INFINITY);
        // the same holds under a goal (f keys instead of d keys)
        let mut a = DijkstraEngine::default();
        a.prepare_directed(&g, s, Goal::Point(Point::new(60.0, 5.0)));
        assert_eq!(a.run_until_settled(&mut g, jail), f64::INFINITY);
        assert_eq!(
            a.settled_dist(c1).unwrap().to_bits(),
            a.settled_dist(c2).unwrap().to_bits()
        );
    }

    #[test]
    fn unreachable_reports_infinity() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(50.0, 50.0), NodeKind::Endpoint);
        // box the source in with four overlapping walls
        g.add_obstacle(Rect::new(0.0, 0.0, 100.0, 10.0));
        g.add_obstacle(Rect::new(0.0, 90.0, 100.0, 100.0));
        g.add_obstacle(Rect::new(0.0, 0.0, 10.0, 100.0));
        g.add_obstacle(Rect::new(90.0, 0.0, 100.0, 100.0));
        let t = g.add_point(Point::new(500.0, 500.0), NodeKind::Endpoint);
        let mut d = DijkstraEngine::new(&g, s);
        assert_eq!(d.run_until_settled(&mut g, t), f64::INFINITY);
    }

    #[test]
    fn triangle_inequality_on_settled_distances() {
        let mut g = VisGraph::new(25.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(20.0, 10.0, 60.0, 30.0));
        g.add_obstacle(Rect::new(70.0, 40.0, 120.0, 55.0));
        g.add_obstacle(Rect::new(30.0, 60.0, 55.0, 95.0));
        let probes: Vec<NodeId> = (0..15)
            .map(|i| {
                g.add_point(
                    Point::new((i * 13 % 140) as f64, (i * 29 % 110) as f64),
                    NodeKind::DataPoint,
                )
            })
            .collect();
        let mut d = DijkstraEngine::new(&g, s);
        d.run_all(&mut g);
        for &p in &probes {
            if let Some(dp) = d.settled_dist(p) {
                // obstructed distance dominates euclidean distance
                assert!(dp + 1e-9 >= g.node_pos(p).dist(g.node_pos(s)));
            }
        }
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn settlement_audit_fires_on_inadmissible_label() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        let d = DijkstraEngine::new(&g, s);
        // a label of 1.0 for a node 100 away is below the Euclidean lower
        // bound — no obstructed path can be that short
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.audit_settlement(&g, t.0, 1.0)
            }))
            .is_err(),
            "audit must reject an inadmissible label"
        );
        // NaN labels are rejected too
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.audit_settlement(&g, t.0, f64::NAN)
            }))
            .is_err(),
            "audit must reject a NaN label"
        );
        // an honest label passes
        d.audit_settlement(&g, t.0, 100.0);
    }
}
