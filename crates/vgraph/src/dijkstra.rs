//! Incremental Dijkstra over the visibility graph.
//!
//! Two paper call sites drive the interface:
//!
//! * **IOR** (Alg. 1) runs Dijkstra from the data point until `S` and `E`
//!   settle, re-running from scratch whenever new obstacles arrive.
//! * **CPLC** (Alg. 2) consumes nodes one at a time in ascending obstructed
//!   distance and stops early via Lemma 7 — which is exactly
//!   [`DijkstraEngine::next_settled`].
//!
//! The engine snapshots the graph version at preparation: advancing it
//! after a structural change is a logic bug and panics in debug builds.
//!
//! The engine is **reusable**: [`DijkstraEngine::prepare`] rewinds it for a
//! new run while keeping the label arrays, the heap and the relaxation
//! scratch buffer allocated. A query workspace holds one engine and
//! prepares it once per traversal instead of allocating a fresh engine per
//! run — the number of times retained capacity was reused is reported
//! through [`DijkstraEngine::reuses`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use conn_geom::OrdF64;

use crate::graph::{NodeId, VisGraph};

const NO_PRED: u32 = u32::MAX;

/// Single-source shortest-path engine with incremental settlement.
#[derive(Debug, Default)]
pub struct DijkstraEngine {
    src: NodeId,
    dist: Vec<f64>,
    pred: Vec<u32>,
    settled: Vec<bool>,
    heap: BinaryHeap<(Reverse<OrdF64>, u32)>,
    version: u64,
    /// Relaxation scratch (edges of the node being settled).
    edge_scratch: Vec<(u32, f64)>,
    /// Runs whose label arrays fit in already-allocated capacity.
    reuses: u64,
    prepared: bool,
}

impl DijkstraEngine {
    /// Prepares a run from `src` against the graph's current version.
    pub fn new(g: &VisGraph, src: NodeId) -> Self {
        let mut e = DijkstraEngine::default();
        e.prepare(g, src);
        e
    }

    /// Rewinds the engine for a fresh run from `src`, reusing the label
    /// arrays, heap and scratch allocations of previous runs.
    pub fn prepare(&mut self, g: &VisGraph, src: NodeId) {
        let n = g.capacity();
        if self.prepared && self.dist.capacity() >= n {
            self.reuses += 1;
        }
        self.prepared = true;
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.pred.clear();
        self.pred.resize(n, NO_PRED);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
        self.version = g.version();
        self.src = src;
        self.dist[src.index()] = 0.0;
        self.heap.push((Reverse(OrdF64::new(0.0)), src.0));
    }

    /// How many [`DijkstraEngine::prepare`] calls reused retained capacity
    /// (the `heap_reuses` metric of the query engine).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    pub fn source(&self) -> NodeId {
        self.src
    }

    /// Settles and returns the next-closest node, or `None` when the
    /// reachable part of the graph is exhausted.
    pub fn next_settled(&mut self, g: &mut VisGraph) -> Option<(NodeId, f64)> {
        debug_assert_eq!(
            self.version,
            g.version(),
            "graph changed under a running Dijkstra"
        );
        while let Some((Reverse(OrdF64(d)), u)) = self.heap.pop() {
            let ui = u as usize;
            if self.settled[ui] {
                continue;
            }
            self.settled[ui] = true;
            // relax (edge list copied into retained scratch — no per-settle
            // allocation once the buffer has grown to the working size);
            // transient candidates that already settled are filtered before
            // their sight test, since relaxing them is a no-op anyway
            let mut edges = std::mem::take(&mut self.edge_scratch);
            edges.clear();
            let settled = &self.settled;
            g.neighbors_into_filtered(NodeId(u), &mut edges, |v| !settled[v as usize]);
            for &(v, w) in &edges {
                let vi = v as usize;
                if self.settled[vi] {
                    continue;
                }
                let nd = d + w;
                if nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.pred[vi] = u;
                    self.heap.push((Reverse(OrdF64::new(nd)), v));
                }
            }
            self.edge_scratch = edges;
            return Some((NodeId(u), d));
        }
        None
    }

    /// Advances until `target` settles; returns its distance
    /// (∞ if unreachable).
    pub fn run_until_settled(&mut self, g: &mut VisGraph, target: NodeId) -> f64 {
        while !self.settled[target.index()] {
            if self.next_settled(g).is_none() {
                return f64::INFINITY;
            }
        }
        self.dist[target.index()]
    }

    /// Settles every reachable node.
    pub fn run_all(&mut self, g: &mut VisGraph) {
        while self.next_settled(g).is_some() {}
    }

    /// Distance of a *settled* node; `None` if not settled (yet).
    pub fn settled_dist(&self, n: NodeId) -> Option<f64> {
        self.settled[n.index()].then(|| self.dist[n.index()])
    }

    /// Predecessor on the shortest path (the `u` of paper Lemmas 5/6).
    pub fn predecessor(&self, n: NodeId) -> Option<NodeId> {
        let p = self.pred[n.index()];
        (p != NO_PRED).then_some(NodeId(p))
    }

    /// Shortest path from the source to `n` as node ids (source first).
    /// Empty when `n` is unreachable or unsettled.
    pub fn path_to(&self, n: NodeId) -> Vec<NodeId> {
        if !self.settled[n.index()] {
            return Vec::new();
        }
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.predecessor(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use conn_geom::{Point, Rect};

    /// One obstacle between two points: the shortest path must round a
    /// corner, and its length is analytically checkable.
    #[test]
    fn detour_around_a_square() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let mut d = DijkstraEngine::new(&g, s);
        let got = d.run_until_settled(&mut g, t);
        // detour via (90,100) and (110,100):
        let want = Point::new(0.0, 50.0).dist(Point::new(90.0, 100.0))
            + 20.0
            + Point::new(110.0, 100.0).dist(Point::new(200.0, 50.0));
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        // path passes exactly those corners
        let path: Vec<Point> = d.path_to(t).iter().map(|&n| g.node_pos(n)).collect();
        assert_eq!(path.len(), 4);
        assert_eq!(path[1], Point::new(90.0, 100.0));
        assert_eq!(path[2], Point::new(110.0, 100.0));
    }

    #[test]
    fn free_space_is_straight_line() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(30.0, 40.0), NodeKind::Endpoint);
        let mut d = DijkstraEngine::new(&g, s);
        assert_eq!(d.run_until_settled(&mut g, t), 50.0);
        assert_eq!(d.path_to(t).len(), 2);
    }

    #[test]
    fn settlement_order_is_ascending() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        for i in 1..20 {
            g.add_point(
                Point::new(i as f64 * 7.0, (i % 5) as f64 * 11.0),
                NodeKind::DataPoint,
            );
        }
        g.add_obstacle(Rect::new(40.0, -10.0, 50.0, 30.0));
        let mut d = DijkstraEngine::new(&g, s);
        let mut prev = -1.0;
        while let Some((_, dist)) = d.next_settled(&mut g) {
            assert!(dist >= prev);
            prev = dist;
        }
    }

    #[test]
    fn prepared_engine_matches_fresh_engine() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let t = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let mut fresh = DijkstraEngine::new(&g, s);
        let want = fresh.run_until_settled(&mut g, t);

        let mut reused = DijkstraEngine::default();
        for _ in 0..3 {
            reused.prepare(&g, s);
            let got = reused.run_until_settled(&mut g, t);
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert_eq!(reused.reuses(), 2, "second and third runs reuse labels");
    }

    #[test]
    fn unreachable_reports_infinity() {
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(Point::new(50.0, 50.0), NodeKind::Endpoint);
        // box the source in with four overlapping walls
        g.add_obstacle(Rect::new(0.0, 0.0, 100.0, 10.0));
        g.add_obstacle(Rect::new(0.0, 90.0, 100.0, 100.0));
        g.add_obstacle(Rect::new(0.0, 0.0, 10.0, 100.0));
        g.add_obstacle(Rect::new(90.0, 0.0, 100.0, 100.0));
        let t = g.add_point(Point::new(500.0, 500.0), NodeKind::Endpoint);
        let mut d = DijkstraEngine::new(&g, s);
        assert_eq!(d.run_until_settled(&mut g, t), f64::INFINITY);
    }

    #[test]
    fn triangle_inequality_on_settled_distances() {
        let mut g = VisGraph::new(25.0);
        let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(20.0, 10.0, 60.0, 30.0));
        g.add_obstacle(Rect::new(70.0, 40.0, 120.0, 55.0));
        g.add_obstacle(Rect::new(30.0, 60.0, 55.0, 95.0));
        let probes: Vec<NodeId> = (0..15)
            .map(|i| {
                g.add_point(
                    Point::new((i * 13 % 140) as f64, (i * 29 % 110) as f64),
                    NodeKind::DataPoint,
                )
            })
            .collect();
        let mut d = DijkstraEngine::new(&g, s);
        d.run_all(&mut g);
        for &p in &probes {
            if let Some(dp) = d.settled_dist(p) {
                // obstructed distance dominates euclidean distance
                assert!(dp + 1e-9 >= g.node_pos(p).dist(g.node_pos(s)));
            }
        }
    }
}
