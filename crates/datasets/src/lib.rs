//! Workload generators reproducing the CONN paper's experimental setup
//! (§5.1).
//!
//! The paper evaluates on a `[0, 10000]²` space with:
//!
//! * **CA** — 60,344 real California location points (non-uniform, clustered),
//! * **LA** — 131,461 street MBRs from Los Angeles (small, thin rectangles),
//! * **Uniform** and **Zipf (α = 0.8)** synthetic points,
//! * query segments with random anchor and orientation, length `ql` % of the
//!   space side.
//!
//! The real datasets are not redistributable here, so [`ca_like`] and
//! [`la_like`] generate synthetic stand-ins that preserve the properties the
//! experiments exercise — CA's clustered density skew, LA's dense field of
//! small elongated obstacles (see DESIGN.md §3 for the substitution
//! rationale). Obstacles are generated **disjoint**, and data points never
//! fall in obstacle interiors, matching the paper's stated conventions.
//!
//! Every generator is deterministic in its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod lookup;
pub mod obstacles;
pub mod points;
pub mod queries;

pub use batch::{batch_queries, mixed_batch, trajectory_routes, QueryMix};
pub use lookup::ObstacleLookup;
pub use obstacles::la_like;
pub use points::{ca_like, uniform_points, zipf_points};
pub use queries::{query_segment, query_segments};

use conn_geom::Rect;

/// The search space used throughout the paper's evaluation.
pub const SPACE: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 10_000.0,
    max_y: 10_000.0,
};

/// Side length of the search space.
pub const SPACE_SIDE: f64 = 10_000.0;

/// Cardinality of the paper's CA dataset (California location points).
pub const PAPER_CA_SIZE: usize = 60_344;

/// Cardinality of the paper's LA dataset (Los Angeles street MBRs).
pub const PAPER_LA_SIZE: usize = 131_461;

/// Paper default query length: 4.5 % of the space side.
pub const DEFAULT_QL: f64 = 0.045;

/// Paper default k for COkNN experiments.
pub const DEFAULT_K: usize = 5;

/// Dataset combination labels used by the figures (CL / UL / ZL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combo {
    /// (P, O) = (CA-like, LA-like)
    Cl,
    /// (P, O) = (Uniform, LA-like)
    Ul,
    /// (P, O) = (Zipf, LA-like)
    Zl,
}

impl Combo {
    /// Two-letter figure label for this combination.
    pub fn label(self) -> &'static str {
        match self {
            Combo::Cl => "CL",
            Combo::Ul => "UL",
            Combo::Zl => "ZL",
        }
    }

    /// Generates the data points of this combination (obstacle-aware).
    pub fn points(self, n: usize, seed: u64, obstacles: &[Rect]) -> Vec<conn_geom::Point> {
        match self {
            Combo::Cl => ca_like(n, seed, obstacles),
            Combo::Ul => uniform_points(n, seed, obstacles),
            Combo::Zl => zipf_points(n, 0.8, seed, obstacles),
        }
    }
}
