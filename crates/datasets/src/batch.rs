//! Batch workload generation for the parallel query layer.
//!
//! The single-query generators of [`crate::queries`] model one client; a
//! query *server* sees structured streams instead. Three mixes cover the
//! scenarios the batch front-end is benchmarked on:
//!
//! * **Uniform** — independent segments anywhere in the space (the paper's
//!   §5.1 workload, unchanged);
//! * **Clustered** — segments anchored near a few hotspots, modelling many
//!   clients in the same district (stresses substrate reuse: consecutive
//!   queries load overlapping obstacle neighborhoods);
//! * **Trajectory** — chains of connected segments with bounded turning
//!   angle, modelling clients moving along routes (each chain element is a
//!   separate CONN query, as in the paper's trajectory extension).
//!
//! Every generator rejection-samples against the obstacle field exactly
//! like [`crate::queries::query_segments`], and is deterministic in its
//! seed.

use conn_geom::{Point, Rect, Segment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lookup::ObstacleLookup;
use crate::{SPACE, SPACE_SIDE};

/// How a batch workload's query segments are laid out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMix {
    /// Independent uniform segments (paper §5.1).
    Uniform,
    /// Segments anchored near `hotspots` uniformly-placed centers, with
    /// anchors spread within `spread × SPACE_SIDE` of their center.
    Clustered {
        /// Number of uniformly-placed cluster centers.
        hotspots: usize,
        /// Anchor spread around each center, as a fraction of `SPACE_SIDE`.
        spread: f64,
    },
    /// Chains of `legs` connected segments; consecutive legs turn by at
    /// most ±45°.
    Trajectory {
        /// Connected legs per chain.
        legs: usize,
    },
}

/// Generates a `count`-query batch of the given mix; each segment has
/// length `ql_frac × SPACE_SIDE` and avoids obstacle interiors.
pub fn batch_queries(
    count: usize,
    mix: QueryMix,
    ql_frac: f64,
    seed: u64,
    obstacles: &[Rect],
) -> Vec<Segment> {
    assert!(ql_frac > 0.0 && ql_frac < 1.0, "ql out of range");
    let lookup = ObstacleLookup::build(obstacles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let len = ql_frac * SPACE_SIDE;
    let mut out = Vec::with_capacity(count);
    let mut rejected = 0usize;
    let budget = |rejected: &mut usize| {
        *rejected += 1;
        assert!(
            *rejected < 200_000 * count.max(10),
            "batch generation stalled: obstacle field too dense"
        );
    };

    match mix {
        QueryMix::Uniform => {
            while out.len() < count {
                match sample_segment(&mut rng, None, None, len, &lookup) {
                    Some(seg) => out.push(seg),
                    None => budget(&mut rejected),
                }
            }
        }
        QueryMix::Clustered { hotspots, spread } => {
            assert!(hotspots >= 1, "need at least one hotspot");
            assert!(spread > 0.0 && spread < 1.0, "spread out of range");
            let centers: Vec<Point> = (0..hotspots)
                .map(|_| {
                    Point::new(
                        rng.gen_range(SPACE.min_x..SPACE.max_x),
                        rng.gen_range(SPACE.min_y..SPACE.max_y),
                    )
                })
                .collect();
            let radius = spread * SPACE_SIDE;
            while out.len() < count {
                let c = centers[out.len() % centers.len()];
                match sample_segment(&mut rng, Some((c, radius)), None, len, &lookup) {
                    Some(seg) => out.push(seg),
                    None => budget(&mut rejected),
                }
            }
        }
        QueryMix::Trajectory { legs } => {
            assert!(legs >= 1, "trajectories need at least one leg");
            'outer: while out.len() < count {
                // first leg anywhere
                let first = loop {
                    match sample_segment(&mut rng, None, None, len, &lookup) {
                        Some(seg) => break seg,
                        None => budget(&mut rejected),
                    }
                };
                let mut heading = (first.b.y - first.a.y).atan2(first.b.x - first.a.x);
                let mut cursor = first.b;
                out.push(first);
                for _ in 1..legs {
                    if out.len() >= count {
                        break 'outer;
                    }
                    // bounded turn; re-sample the turn a few times before
                    // abandoning the chain (dead-ends next to obstacles)
                    let mut placed = false;
                    for _ in 0..64 {
                        let turn = rng
                            .gen_range(-std::f64::consts::FRAC_PI_4..std::f64::consts::FRAC_PI_4);
                        let theta = heading + turn;
                        match sample_segment(&mut rng, None, Some((cursor, theta)), len, &lookup) {
                            Some(seg) => {
                                heading = theta;
                                cursor = seg.b;
                                out.push(seg);
                                placed = true;
                                break;
                            }
                            None => budget(&mut rejected),
                        }
                    }
                    if !placed {
                        continue 'outer; // start a fresh chain
                    }
                }
            }
        }
    }
    out
}

/// Generates `count` polyline routes of exactly `legs` connected legs each
/// (vertex chains of `legs + 1` points), for the trajectory-session
/// workloads: every leg has length `ql_frac × SPACE_SIDE`, turns by at
/// most ±45°, and avoids obstacle interiors — the paper's convention for
/// query segments, and the precondition under which the session's seeded
/// `RLMAX` bound applies. Deterministic in `seed`.
///
/// Unlike [`QueryMix::Trajectory`] (which flattens chains into a segment
/// batch and may truncate the last chain), every returned route is
/// complete: chains that dead-end against obstacles are abandoned and
/// resampled.
pub fn trajectory_routes(
    count: usize,
    legs: usize,
    ql_frac: f64,
    seed: u64,
    obstacles: &[Rect],
) -> Vec<Vec<Point>> {
    assert!(legs >= 1, "trajectories need at least one leg");
    assert!(ql_frac > 0.0 && ql_frac < 1.0, "ql out of range");
    let lookup = ObstacleLookup::build(obstacles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6C62_272E_07BB_0142);
    let len = ql_frac * SPACE_SIDE;
    let mut out = Vec::with_capacity(count);
    let mut rejected = 0usize;
    while out.len() < count {
        let first = loop {
            match sample_segment(&mut rng, None, None, len, &lookup) {
                Some(seg) => break seg,
                None => {
                    rejected += 1;
                    assert!(
                        rejected < 200_000 * count.max(10),
                        "route generation stalled: obstacle field too dense"
                    );
                }
            }
        };
        let mut verts = vec![first.a, first.b];
        let mut heading = (first.b.y - first.a.y).atan2(first.b.x - first.a.x);
        let mut cursor = first.b;
        let mut complete = true;
        for _ in 1..legs {
            let mut placed = false;
            for attempt in 0..96 {
                // prefer gentle ±45° turns; widen toward a full U-turn when
                // the chain is stuck against an obstacle or the space
                // boundary (long routes would otherwise dead-end forever)
                let half_range = (std::f64::consts::FRAC_PI_4 * (1.0 + attempt as f64 / 16.0))
                    .min(std::f64::consts::PI);
                let turn = rng.gen_range(-half_range..half_range);
                let theta = heading + turn;
                if let Some(seg) =
                    sample_segment(&mut rng, None, Some((cursor, theta)), len, &lookup)
                {
                    heading = theta;
                    cursor = seg.b;
                    verts.push(seg.b);
                    placed = true;
                    break;
                }
                rejected += 1;
            }
            if !placed {
                complete = false; // dead end: abandon and resample the route
                break;
            }
        }
        if complete {
            out.push(verts);
        }
    }
    out
}

/// The default server workload: one third uniform, one third clustered
/// (4 hotspots), one third trajectories of 4 legs — interleaved so every
/// prefix of the batch stays mixed.
pub fn mixed_batch(count: usize, ql_frac: f64, seed: u64, obstacles: &[Rect]) -> Vec<Segment> {
    let third = count / 3;
    let uniform = batch_queries(
        count - 2 * third,
        QueryMix::Uniform,
        ql_frac,
        seed,
        obstacles,
    );
    let clustered = batch_queries(
        third,
        QueryMix::Clustered {
            hotspots: 4,
            spread: 0.05,
        },
        ql_frac,
        seed.wrapping_add(1),
        obstacles,
    );
    let walks = batch_queries(
        third,
        QueryMix::Trajectory { legs: 4 },
        ql_frac,
        seed.wrapping_add(2),
        obstacles,
    );
    let mut out = Vec::with_capacity(count);
    let mut iters = [
        uniform.into_iter(),
        clustered.into_iter(),
        walks.into_iter(),
    ];
    let mut exhausted = 0;
    while exhausted < iters.len() {
        exhausted = 0;
        for it in &mut iters {
            match it.next() {
                Some(seg) => out.push(seg),
                None => exhausted += 1,
            }
        }
    }
    debug_assert_eq!(out.len(), count);
    out
}

/// One rejection-sampling attempt. `anchor_disc` restricts the start point
/// to a disc; `fixed_start` pins start point and heading (trajectory legs).
fn sample_segment(
    rng: &mut StdRng,
    anchor_disc: Option<(Point, f64)>,
    fixed_start: Option<(Point, f64)>,
    len: f64,
    lookup: &ObstacleLookup,
) -> Option<Segment> {
    let (s, theta) = match fixed_start {
        Some((s, theta)) => (s, theta),
        None => {
            let s = match anchor_disc {
                Some((c, r)) => Point::new(
                    (c.x + rng.gen_range(-r..r)).clamp(SPACE.min_x, SPACE.max_x),
                    (c.y + rng.gen_range(-r..r)).clamp(SPACE.min_y, SPACE.max_y),
                ),
                None => Point::new(
                    rng.gen_range(SPACE.min_x..SPACE.max_x),
                    rng.gen_range(SPACE.min_y..SPACE.max_y),
                ),
            };
            (s, rng.gen_range(0.0..std::f64::consts::TAU))
        }
    };
    let e = Point::new(s.x + len * theta.cos(), s.y + len * theta.sin());
    let seg = Segment::new(s, e);
    let ok = SPACE.contains(s)
        && SPACE.contains(e)
        && !lookup.point_in_interior(s)
        && !lookup.point_in_interior(e)
        && !lookup.segment_blocked(&seg);
    ok.then_some(seg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacles::la_like;
    use conn_geom::EPS;

    #[test]
    fn uniform_matches_contract() {
        let qs = batch_queries(30, QueryMix::Uniform, 0.045, 7, &[]);
        assert_eq!(qs.len(), 30);
        for q in &qs {
            assert!((q.len() - 450.0).abs() < EPS);
            assert!(SPACE.contains(q.a) && SPACE.contains(q.b));
        }
    }

    #[test]
    fn clustered_anchors_near_hotspots() {
        let qs = batch_queries(
            40,
            QueryMix::Clustered {
                hotspots: 2,
                spread: 0.02,
            },
            0.03,
            11,
            &[],
        );
        assert_eq!(qs.len(), 40);
        // with 2 hotspots and spread 200, starts live in ≤ 2 tight discs:
        // pairwise distances within a disc are ≤ ~2·√2·200
        let mut reps: Vec<Point> = Vec::new();
        for q in &qs {
            if !reps.iter().any(|r| r.dist(q.a) < 600.0) {
                reps.push(q.a);
            }
        }
        assert!(reps.len() <= 2, "starts form {} clusters", reps.len());
    }

    #[test]
    fn trajectory_legs_chain() {
        let qs = batch_queries(12, QueryMix::Trajectory { legs: 4 }, 0.03, 5, &[]);
        assert_eq!(qs.len(), 12);
        // legs within a chain start where the previous ended
        let mut chained = 0;
        for w in qs.windows(2) {
            if w[0].b.dist(w[1].a) < EPS {
                chained += 1;
            }
        }
        assert!(chained >= 6, "only {chained} chained transitions");
    }

    #[test]
    fn trajectory_routes_are_complete_chains() {
        let obstacles = la_like(200, 21);
        let lookup = ObstacleLookup::build(&obstacles);
        let routes = trajectory_routes(8, 5, 0.03, 17, &obstacles);
        assert_eq!(routes.len(), 8);
        for verts in &routes {
            assert_eq!(verts.len(), 6, "5 legs = 6 vertices");
            for w in verts.windows(2) {
                let leg = conn_geom::Segment::new(w[0], w[1]);
                assert!((leg.len() - 0.03 * SPACE_SIDE).abs() < EPS);
                assert!(!lookup.segment_blocked(&leg), "leg crosses an obstacle");
            }
        }
        // deterministic
        let again = trajectory_routes(8, 5, 0.03, 17, &obstacles);
        assert_eq!(routes, again);
    }

    #[test]
    fn batch_avoids_obstacles_and_is_deterministic() {
        let obstacles = la_like(400, 13);
        let lookup = ObstacleLookup::build(&obstacles);
        let a = mixed_batch(31, 0.04, 9, &obstacles);
        let b = mixed_batch(31, 0.04, 9, &obstacles);
        assert_eq!(a.len(), 31);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
        for q in &a {
            assert!(!lookup.segment_blocked(q));
        }
    }
}
