//! A small grid lookup used only at generation time (rejection sampling);
//! query-time spatial indexing lives in `conn-index` / `conn-vgraph`.

use conn_geom::{Point, Rect, Segment};
use std::collections::HashMap;

/// Cell-hash over obstacle rectangles supporting point-in-interior and
/// segment-crosses-interior tests during dataset generation.
#[derive(Debug)]
pub struct ObstacleLookup {
    cell: f64,
    cells: HashMap<(i32, i32), Vec<u32>>,
    rects: Vec<Rect>,
}

impl ObstacleLookup {
    /// Creates an empty lookup with the given grid cell size.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0);
        ObstacleLookup {
            cell,
            cells: HashMap::new(),
            rects: Vec::new(),
        }
    }

    /// Builds a lookup sized for the given obstacle set.
    pub fn build(rects: &[Rect]) -> Self {
        // pick a cell about twice the median obstacle extent, floor of 20
        let mut extents: Vec<f64> = rects.iter().map(|r| r.width().max(r.height())).collect();
        extents.sort_by(f64::total_cmp);
        let median = extents.get(extents.len() / 2).copied().unwrap_or(50.0);
        let mut l = ObstacleLookup::new((median * 2.0).max(20.0));
        for r in rects {
            l.insert(*r);
        }
        l
    }

    /// Number of obstacles inserted.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when no obstacle has been inserted.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (i32, i32) {
        (
            (x / self.cell).floor() as i32,
            (y / self.cell).floor() as i32,
        )
    }

    /// Inserts an obstacle into the grid.
    pub fn insert(&mut self, r: Rect) {
        let id = self.rects.len() as u32;
        self.rects.push(r);
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
    }

    /// True when `p` lies strictly inside some obstacle.
    pub fn point_in_interior(&self, p: Point) -> bool {
        let c = self.cell_of(p.x, p.y);
        self.cells.get(&c).is_some_and(|ids| {
            ids.iter()
                .any(|&i| self.rects[i as usize].strictly_contains(p))
        })
    }

    /// True when the closed rectangle `r` overlaps any stored obstacle
    /// (used to keep generated obstacles disjoint).
    pub fn rect_intersects_any(&self, r: &Rect) -> bool {
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    if ids.iter().any(|&i| self.rects[i as usize].intersects(r)) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// True when segment `s` crosses any obstacle interior (bounding-box
    /// cell sweep; exact per-rect test).
    pub fn segment_blocked(&self, s: &Segment) -> bool {
        let bb = Rect::from_segment(s);
        let (x0, y0) = self.cell_of(bb.min_x, bb.min_y);
        let (x1, y1) = self.cell_of(bb.max_x, bb.max_y);
        let mut seen: Vec<u32> = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &i in ids {
                        if !seen.contains(&i) {
                            seen.push(i);
                            if self.rects[i as usize].blocks(s) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_rect_tests() {
        let mut l = ObstacleLookup::new(50.0);
        l.insert(Rect::new(100.0, 100.0, 200.0, 150.0));
        assert!(l.point_in_interior(Point::new(150.0, 125.0)));
        assert!(!l.point_in_interior(Point::new(100.0, 125.0))); // boundary
        assert!(!l.point_in_interior(Point::new(500.0, 500.0)));
        assert!(l.rect_intersects_any(&Rect::new(190.0, 140.0, 220.0, 180.0)));
        assert!(!l.rect_intersects_any(&Rect::new(300.0, 300.0, 320.0, 320.0)));
    }

    #[test]
    fn segment_blocked_matches_rect_blocks() {
        let mut l = ObstacleLookup::new(50.0);
        let r = Rect::new(100.0, 100.0, 200.0, 150.0);
        l.insert(r);
        let cross = Segment::new(Point::new(0.0, 120.0), Point::new(400.0, 120.0));
        let miss = Segment::new(Point::new(0.0, 300.0), Point::new(400.0, 300.0));
        assert!(l.segment_blocked(&cross));
        assert!(!l.segment_blocked(&miss));
    }

    #[test]
    fn build_adapts_cell_size() {
        let rects = vec![Rect::new(0.0, 0.0, 400.0, 10.0); 3];
        let l = ObstacleLookup::build(&rects);
        assert_eq!(l.len(), 3);
        assert!(l.point_in_interior(Point::new(200.0, 5.0)));
    }
}
