//! Data-point generators: Uniform, Zipf(α) and CA-like clustered points.
//!
//! All generators rejection-sample against the obstacle set so that no point
//! falls strictly inside an obstacle (paper §5.1: points may lie on obstacle
//! boundaries but not in their interiors).

use conn_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lookup::ObstacleLookup;
use crate::{SPACE, SPACE_SIDE};

/// Number of discrete bins a Zipf-distributed coordinate is drawn over.
const ZIPF_BINS: usize = 1000;

/// Uniformly distributed points avoiding obstacle interiors.
pub fn uniform_points(n: usize, seed: u64, obstacles: &[Rect]) -> Vec<Point> {
    let lookup = ObstacleLookup::build(obstacles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517C_C1B7_2722_0A95);
    sample_free(
        n,
        &lookup,
        move |rng| {
            Point::new(
                rng.gen_range(SPACE.min_x..SPACE.max_x),
                rng.gen_range(SPACE.min_y..SPACE.max_y),
            )
        },
        &mut rng,
    )
}

/// Zipf-skewed points: each coordinate drawn independently from a Zipf
/// distribution with skew `alpha` over `ZIPF_BINS` bins mapped onto the
/// space side (paper §5.1, α = 0.8).
pub fn zipf_points(n: usize, alpha: f64, seed: u64, obstacles: &[Rect]) -> Vec<Point> {
    let lookup = ObstacleLookup::build(obstacles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_F491_4F6C_DD1D);
    // precompute the CDF over bin ranks: P(rank r) ∝ 1 / r^alpha
    let mut cdf = Vec::with_capacity(ZIPF_BINS);
    let mut acc = 0.0;
    for r in 1..=ZIPF_BINS {
        acc += 1.0 / (r as f64).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    let zipf_coord = move |rng: &mut StdRng, cdf: &[f64]| -> f64 {
        let u = rng.gen::<f64>() * total;
        let bin = cdf.partition_point(|&c| c < u).min(ZIPF_BINS - 1);
        // uniform inside the chosen bin
        (bin as f64 + rng.gen::<f64>()) / ZIPF_BINS as f64 * SPACE_SIDE
    };
    sample_free(
        n,
        &lookup,
        move |rng| Point::new(zipf_coord(rng, &cdf), zipf_coord(rng, &cdf)),
        &mut rng,
    )
}

/// CA-like clustered points: a Zipf-weighted Gaussian mixture (populated
/// places concentrate around cities) with a uniform background component.
///
/// The cluster layout itself is derived deterministically from `seed`.
pub fn ca_like(n: usize, seed: u64, obstacles: &[Rect]) -> Vec<Point> {
    const CLUSTERS: usize = 36;
    const BACKGROUND_FRAC: f64 = 0.10;
    let lookup = ObstacleLookup::build(obstacles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA3E_39CB_94B9_5BDB);

    // cluster centers, spreads and Zipf-ish weights
    let mut centers = Vec::with_capacity(CLUSTERS);
    let mut sigmas = Vec::with_capacity(CLUSTERS);
    let mut weights = Vec::with_capacity(CLUSTERS);
    let mut acc = 0.0;
    for i in 0..CLUSTERS {
        centers.push(Point::new(
            rng.gen_range(SPACE.min_x + 500.0..SPACE.max_x - 500.0),
            rng.gen_range(SPACE.min_y + 500.0..SPACE.max_y - 500.0),
        ));
        sigmas.push(rng.gen_range(120.0..600.0));
        acc += 1.0 / (i as f64 + 1.0).powf(0.9);
        weights.push(acc);
    }
    let weight_total = acc;

    sample_free(
        n,
        &lookup,
        move |rng| {
            if rng.gen::<f64>() < BACKGROUND_FRAC {
                return Point::new(
                    rng.gen_range(SPACE.min_x..SPACE.max_x),
                    rng.gen_range(SPACE.min_y..SPACE.max_y),
                );
            }
            let u = rng.gen::<f64>() * weight_total;
            let c = weights.partition_point(|&w| w < u).min(CLUSTERS - 1);
            let (g1, g2) = gaussian_pair(rng);
            Point::new(centers[c].x + sigmas[c] * g1, centers[c].y + sigmas[c] * g2)
        },
        &mut rng,
    )
}

/// Draws `n` samples from `proposal`, rejecting those outside the space or
/// strictly inside an obstacle.
fn sample_free<F>(
    n: usize,
    lookup: &ObstacleLookup,
    mut proposal: F,
    rng: &mut StdRng,
) -> Vec<Point>
where
    F: FnMut(&mut StdRng) -> Point,
{
    let mut out = Vec::with_capacity(n);
    let mut rejected = 0usize;
    while out.len() < n {
        let p = proposal(rng);
        if !SPACE.contains(p) || lookup.point_in_interior(p) {
            rejected += 1;
            assert!(
                rejected < 1000 * n.max(1000),
                "point generation stalled: space too occluded"
            );
            continue;
        }
        out.push(p);
    }
    out
}

/// Box–Muller transform (keeps us off the `rand_distr` dependency).
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacles::la_like;

    #[test]
    fn uniform_fills_space_evenly() {
        let pts = uniform_points(4000, 1, &[]);
        assert_eq!(pts.len(), 4000);
        // quadrant counts roughly balanced
        let mut quads = [0usize; 4];
        for p in &pts {
            let qx = usize::from(p.x > 5000.0);
            let qy = usize::from(p.y > 5000.0);
            quads[qx * 2 + qy] += 1;
        }
        for q in quads {
            assert!(q > 700 && q < 1300, "quadrants {quads:?}");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_origin() {
        let pts = zipf_points(4000, 0.8, 1, &[]);
        let low = pts.iter().filter(|p| p.x < 2500.0).count();
        assert!(
            low > 1600,
            "zipf should concentrate mass at small coordinates, got {low}/4000 in the first quarter"
        );
    }

    #[test]
    fn ca_like_is_clustered() {
        let pts = ca_like(4000, 1, &[]);
        // clustered data has much higher max cell occupancy than uniform
        let occupancy = |pts: &[Point]| {
            let mut cells = std::collections::HashMap::new();
            for p in pts {
                *cells
                    .entry(((p.x / 500.0) as i32, (p.y / 500.0) as i32))
                    .or_insert(0usize) += 1;
            }
            *cells.values().max().unwrap()
        };
        let uni = uniform_points(4000, 1, &[]);
        assert!(occupancy(&pts) > 2 * occupancy(&uni));
    }

    #[test]
    fn no_point_inside_an_obstacle() {
        let obstacles = la_like(400, 9);
        let lookup = ObstacleLookup::build(&obstacles);
        for combo in [
            uniform_points(1000, 2, &obstacles),
            zipf_points(1000, 0.8, 2, &obstacles),
            ca_like(1000, 2, &obstacles),
        ] {
            for p in combo {
                assert!(!lookup.point_in_interior(p), "{p} inside an obstacle");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_points(50, 5, &[]), uniform_points(50, 5, &[]));
        assert_ne!(uniform_points(50, 5, &[]), uniform_points(50, 6, &[]));
    }
}
