//! LA-like obstacle generation: a dense field of small, thin, axis-aligned
//! rectangles resembling street MBRs.
//!
//! What the CONN experiments need from the obstacle set is (a) high
//! cardinality, (b) small elongated rectangles, (c) an obstacle density that
//! leaves free space connected. The generator draws street segments with a
//! horizontal/vertical orientation mix and rejection-samples them to be
//! pairwise **disjoint**; rectangle dimensions shrink as `n` grows so total
//! coverage stays near a fixed fraction of the space, mirroring how a fixed
//! city area is subdivided by ever more streets.

use conn_geom::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lookup::ObstacleLookup;
use crate::{SPACE, SPACE_SIDE};

/// Fraction of the space the obstacles should roughly cover.
const TARGET_COVERAGE: f64 = 0.12;

/// Aspect ratio range of a street MBR (length : thickness).
const ASPECT_MIN: f64 = 4.0;
const ASPECT_MAX: f64 = 20.0;

/// Generates `n` disjoint street-like rectangles in the `[0, 10000]²` space.
///
/// Deterministic in `seed`.
pub fn la_like(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    // mean area per obstacle so that n of them cover TARGET_COVERAGE
    let mean_area = TARGET_COVERAGE * SPACE_SIDE * SPACE_SIDE / n as f64;
    let mut lookup = ObstacleLookup::new((mean_area.sqrt() * 4.0).max(20.0));

    let mut rejected = 0usize;
    while out.len() < n {
        // area varies ×/÷ 2 around the mean; aspect log-uniform
        let area = mean_area * (0.5 + 1.5 * rng.gen::<f64>());
        let aspect = ASPECT_MIN * (ASPECT_MAX / ASPECT_MIN).powf(rng.gen::<f64>());
        let long = (area * aspect).sqrt();
        let short = (area / aspect).sqrt().max(0.5);
        let (w, h) = if rng.gen::<bool>() {
            (long, short)
        } else {
            (short, long)
        };
        let x = rng.gen_range(SPACE.min_x..(SPACE.max_x - w).max(SPACE.min_x + 1.0));
        let y = rng.gen_range(SPACE.min_y..(SPACE.max_y - h).max(SPACE.min_y + 1.0));
        let r = Rect::new(x, y, x + w, y + h);
        if lookup.rect_intersects_any(&r) {
            rejected += 1;
            // safety valve: overly dense request — accept tangential layouts
            // rather than looping forever (practically unreachable at the
            // coverage target above)
            assert!(
                rejected < 200 * n.max(1000),
                "obstacle generation stalled: coverage target too high"
            );
            continue;
        }
        lookup.insert(r);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_disjoint() {
        let rects = la_like(500, 7);
        assert_eq!(rects.len(), 500);
        // spot-check disjointness on a sample (full O(n²) is slow in tests)
        for i in (0..rects.len()).step_by(17) {
            for j in 0..rects.len() {
                if i != j {
                    assert!(
                        !rects[i].interiors_intersect(&rects[j]),
                        "{i} and {j} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn stays_in_space_and_thin() {
        let rects = la_like(300, 11);
        for r in &rects {
            assert!(r.min_x >= SPACE.min_x && r.max_x <= SPACE.max_x);
            assert!(r.min_y >= SPACE.min_y && r.max_y <= SPACE.max_y);
            let aspect = (r.width() / r.height()).max(r.height() / r.width());
            assert!(aspect >= 2.0, "street rect not elongated: {r:?}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(la_like(100, 42), la_like(100, 42));
        assert_ne!(la_like(100, 42), la_like(100, 43));
    }

    #[test]
    fn coverage_near_target() {
        let rects = la_like(1000, 3);
        let total: f64 = rects.iter().map(Rect::area).sum();
        let frac = total / (SPACE_SIDE * SPACE_SIDE);
        assert!(frac > 0.06 && frac < 0.2, "coverage {frac}");
    }

    #[test]
    fn sizes_shrink_with_cardinality() {
        let small = la_like(200, 5);
        let large = la_like(2000, 5);
        let mean = |rs: &[Rect]| rs.iter().map(Rect::area).sum::<f64>() / rs.len() as f64;
        assert!(mean(&large) < mean(&small) / 4.0);
    }
}
