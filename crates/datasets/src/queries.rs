//! Query-segment workload generation.
//!
//! Paper §5.1: "The starting point and the orientation (in [0, 2π)) of the
//! query line segment are randomly generated, while its length is controlled
//! by the parameter ql" (a percentage of the space side). The query segment
//! models a movement trajectory, so segments crossing obstacle interiors are
//! rejection-resampled (the library itself tolerates crossing segments; the
//! *workload* avoids them — DESIGN.md §3).

use conn_geom::{Point, Rect, Segment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lookup::ObstacleLookup;
use crate::{SPACE, SPACE_SIDE};

/// Generates one query segment of length `ql_frac × SPACE_SIDE`.
pub fn query_segment(ql_frac: f64, seed: u64, obstacles: &[Rect]) -> Segment {
    query_segments(1, ql_frac, seed, obstacles)
        .pop()
        .expect("one segment")
}

/// Generates `count` query segments of length `ql_frac × SPACE_SIDE`
/// (e.g. `ql_frac = 0.045` for the paper default of 4.5 %).
///
/// Dense fields (the paper-scale LA set covers a large fraction of the
/// space) can make a full-length unblocked placement vanishingly rare, so
/// the sampler adapts: after every `SHRINK_AFTER` consecutive rejections
/// the candidate length shrinks by `SHRINK`, down to a floor of 5 % of
/// the request. The schedule depends only on the rejection count, so the
/// workload stays deterministic in the seed; sparse fields never reject
/// enough to trigger it and keep exact-length segments.
pub fn query_segments(count: usize, ql_frac: f64, seed: u64, obstacles: &[Rect]) -> Vec<Segment> {
    /// Consecutive rejections before each length-shrink step.
    const SHRINK_AFTER: usize = 500;
    /// Per-step length factor.
    const SHRINK: f64 = 0.9;
    assert!(ql_frac > 0.0 && ql_frac < 1.0, "ql out of range");
    let lookup = ObstacleLookup::build(obstacles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let len = ql_frac * SPACE_SIDE;
    let mut out = Vec::with_capacity(count);
    let mut rejected = 0usize;
    let mut streak = 0usize;
    while out.len() < count {
        let cur_len = (len * SHRINK.powi((streak / SHRINK_AFTER) as i32)).max(len * 0.05);
        let s = Point::new(
            rng.gen_range(SPACE.min_x..SPACE.max_x),
            rng.gen_range(SPACE.min_y..SPACE.max_y),
        );
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let e = Point::new(s.x + cur_len * theta.cos(), s.y + cur_len * theta.sin());
        let seg = Segment::new(s, e);
        let ok = SPACE.contains(e)
            && !lookup.point_in_interior(s)
            && !lookup.point_in_interior(e)
            && !lookup.segment_blocked(&seg);
        if ok {
            out.push(seg);
            streak = 0;
        } else {
            rejected += 1;
            streak += 1;
            assert!(
                rejected < 100_000 * count.max(10),
                "query generation stalled: obstacle field too dense"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacles::la_like;
    use conn_geom::EPS;

    #[test]
    fn segments_have_requested_length_and_stay_inside() {
        let qs = query_segments(50, 0.045, 3, &[]);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!((q.len() - 450.0).abs() < EPS);
            assert!(SPACE.contains(q.a) && SPACE.contains(q.b));
        }
    }

    #[test]
    fn segments_avoid_obstacles() {
        let obstacles = la_like(600, 21);
        let lookup = ObstacleLookup::build(&obstacles);
        for q in query_segments(40, 0.06, 4, &obstacles) {
            assert!(!lookup.segment_blocked(&q));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = query_segments(10, 0.03, 5, &[]);
        let b = query_segments(10, 0.03, 5, &[]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
    }

    #[test]
    fn dense_field_terminates_with_shorter_segments() {
        // A near-solid grid of blocks with 20-unit corridors: a 450-unit
        // straight placement is essentially impossible, so the adaptive
        // shrink has to kick in for generation to terminate at all.
        let mut obstacles = Vec::new();
        for gx in 0..40 {
            for gy in 0..40 {
                let x = gx as f64 * 250.0;
                let y = gy as f64 * 250.0;
                obstacles.push(Rect::new(x, y, x + 230.0, y + 230.0));
            }
        }
        let lookup = ObstacleLookup::build(&obstacles);
        let qs = query_segments(5, 0.045, 7, &obstacles);
        assert_eq!(qs.len(), 5);
        for q in &qs {
            assert!(q.len() <= 450.0 + EPS, "longer than requested: {}", q.len());
            assert!(
                q.len() >= 0.05 * 450.0 - EPS,
                "below the floor: {}",
                q.len()
            );
            assert!(!lookup.segment_blocked(q));
        }
    }

    #[test]
    fn orientations_cover_the_circle() {
        let qs = query_segments(200, 0.045, 9, &[]);
        let mut quadrants = [0usize; 4];
        for q in &qs {
            let d = q.b - q.a;
            let idx = match (d.x >= 0.0, d.y >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            quadrants[idx] += 1;
        }
        for c in quadrants {
            assert!(c > 20, "orientation skew: {quadrants:?}");
        }
    }
}
