//! Property tests for the workload generators: constraints hold for every
//! parameter combination, and everything is deterministic in the seed.

use conn_datasets::{
    la_like, query_segments, uniform_points, zipf_points, Combo, ObstacleLookup, SPACE,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn obstacles_disjoint_and_inside_space(n in 10usize..300, seed in 0u64..1000) {
        let rects = la_like(n, seed);
        prop_assert_eq!(rects.len(), n);
        let lookup = ObstacleLookup::build(&rects);
        let _ = lookup;
        for (i, r) in rects.iter().enumerate() {
            prop_assert!(r.min_x >= SPACE.min_x && r.max_x <= SPACE.max_x);
            prop_assert!(r.min_y >= SPACE.min_y && r.max_y <= SPACE.max_y);
            prop_assert!(r.area() > 0.0);
            // spot-check pairwise disjointness against a stride of others
            for j in (0..rects.len()).step_by(7) {
                if i != j {
                    prop_assert!(!rects[i].interiors_intersect(&rects[j]));
                }
            }
        }
    }

    #[test]
    fn points_avoid_interiors_for_all_combos(
        n in 10usize..200,
        n_obs in 20usize..150,
        seed in 0u64..1000,
    ) {
        let obstacles = la_like(n_obs, seed);
        let lookup = ObstacleLookup::build(&obstacles);
        for combo in [Combo::Cl, Combo::Ul, Combo::Zl] {
            let pts = combo.points(n, seed, &obstacles);
            prop_assert_eq!(pts.len(), n);
            for p in &pts {
                prop_assert!(SPACE.contains(*p), "{combo:?}: {p} escapes the space");
                prop_assert!(!lookup.point_in_interior(*p), "{combo:?}: {p} in an obstacle");
            }
        }
    }

    #[test]
    fn queries_have_exact_length_and_avoid_obstacles(
        count in 1usize..20,
        ql in 0.01f64..0.09,
        seed in 0u64..1000,
    ) {
        let obstacles = la_like(100, seed);
        let lookup = ObstacleLookup::build(&obstacles);
        let qs = query_segments(count, ql, seed, &obstacles);
        prop_assert_eq!(qs.len(), count);
        for q in &qs {
            prop_assert!((q.len() - ql * 10_000.0).abs() < 1e-6);
            prop_assert!(SPACE.contains(q.a) && SPACE.contains(q.b));
            prop_assert!(!lookup.segment_blocked(q));
        }
    }

    #[test]
    fn determinism(seed in 0u64..1000) {
        prop_assert_eq!(la_like(40, seed), la_like(40, seed));
        let o = la_like(40, seed);
        prop_assert_eq!(uniform_points(30, seed, &o), uniform_points(30, seed, &o));
        prop_assert_eq!(
            zipf_points(30, 0.8, seed, &o),
            zipf_points(30, 0.8, seed, &o)
        );
        let q1 = query_segments(5, 0.03, seed, &o);
        let q2 = query_segments(5, 0.03, seed, &o);
        for (a, b) in q1.iter().zip(&q2) {
            prop_assert_eq!(a.a, b.a);
            prop_assert_eq!(a.b, b.b);
        }
    }
}
