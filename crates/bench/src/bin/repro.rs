//! `repro` — regenerates every table/figure series of the paper's
//! evaluation (§5) as text tables.
//!
//! ```text
//! repro [fig9|fig10|fig11|fig12|fig13|ablation|all] [--scale S] [--queries N] [--seed S]
//! ```
//!
//! * `--scale` — dataset scale relative to the paper's cardinalities
//!   (|LA| = 131,461): `smoke` (1/256), `default` (1/16), `paper` (1), or a
//!   ratio like `0.125`.
//! * `--queries` — workload size per setting (paper: 100; default here 20).
//!
//! Absolute numbers differ from the paper (different hardware, synthetic
//! stand-ins for CA/LA, reduced scale); the *shapes* — who wins, what grows
//! with what — are the reproduction target. See EXPERIMENTS.md.

use conn_bench::{print_header, print_row, Scale, Workload};
use conn_core::ConnConfig;
use conn_datasets::{Combo, DEFAULT_K, DEFAULT_QL};

struct Args {
    what: String,
    scale: Scale,
    queries: usize,
    seed: u64,
}

const KNOWN_TARGETS: [&str; 8] = [
    "all",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation",
    "motivation",
];

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: repro [{}] [--scale smoke|default|paper|RATIO] [--queries N] [--seed S]",
        KNOWN_TARGETS.join("|")
    );
    std::process::exit(2);
}

fn flag_value(argv: &[String], i: usize) -> &str {
    argv.get(i)
        .map(String::as_str)
        .unwrap_or_else(|| usage(&format!("{} requires a value", argv[i - 1])))
}

fn parse_args() -> Args {
    let mut what = "all".to_string();
    let mut scale = Scale::DEFAULT;
    let mut queries = 20usize;
    let mut seed = 2009u64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match flag_value(&argv, i) {
                    "smoke" => Scale::SMOKE,
                    "default" => Scale::DEFAULT,
                    "paper" => Scale::PAPER,
                    s => Scale(s.parse().unwrap_or_else(|_| {
                        usage(&format!(
                            "--scale must be smoke, default, paper, or a ratio (got {s:?})"
                        ))
                    })),
                };
            }
            "--queries" => {
                i += 1;
                queries = flag_value(&argv, i).parse().unwrap_or_else(|_| {
                    usage(&format!("--queries must be a number (got {:?})", argv[i]))
                });
            }
            "--seed" => {
                i += 1;
                seed = flag_value(&argv, i).parse().unwrap_or_else(|_| {
                    usage(&format!("--seed must be a number (got {:?})", argv[i]))
                });
            }
            other if KNOWN_TARGETS.contains(&other) => what = other.to_string(),
            other => usage(&format!("unknown target {other:?}")),
        }
        i += 1;
    }
    Args {
        what,
        scale,
        queries,
        seed,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "# CONN reproduction — scale {:.4} (|O| = {}, |P|_CA = {}), {} queries/setting, seed {}",
        args.scale.0,
        args.scale.obstacles(),
        args.scale.ca_points(),
        args.queries,
        args.seed
    );
    let all = args.what == "all";
    if all || args.what == "fig9" {
        fig9(&args);
    }
    if all || args.what == "fig10" {
        fig10(&args);
    }
    if all || args.what == "fig11" {
        fig11(&args);
    }
    if all || args.what == "fig12" {
        fig12(&args);
    }
    if all || args.what == "fig13" {
        fig13(&args);
    }
    if all || args.what == "ablation" {
        ablation(&args);
    }
    if all || args.what == "motivation" {
        motivation(&args);
    }
}

/// The paper's §1 motivation: a naive CONN built from m snapshot ONN
/// queries vs one exact CONN query (same R-trees, same I/O accounting).
fn motivation(args: &Args) {
    use conn_core::{conn_search, naive_conn_by_onn};
    println!("\n## Motivation — naive m-point ONN sampling vs one exact CONN (UL, k = 1)");
    let scale = Scale(args.scale.0.min(1.0 / 64.0)); // the naive side is slow
    let w = Workload::with_ratio(
        Combo::Ul,
        scale,
        1.0,
        DEFAULT_QL,
        args.queries.min(5),
        args.seed,
    );
    let cfg = ConnConfig::default();
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9}",
        "strategy", "total(s)", "cpu(s)", "reads", "faults"
    );
    let mut exact = conn_core::QueryStats::default();
    for q in &w.queries {
        let (_, s) = conn_search(&w.data_tree, &w.obstacle_tree, q, &cfg);
        exact.accumulate(&s);
    }
    let e = exact.averaged(w.queries.len() as u64);
    println!(
        "{:<16} {:>10.3} {:>9.3} {:>9.1} {:>9.1}",
        "exact CONN", e.total_s, e.cpu_s, e.reads, e.faults
    );
    for m in [10usize, 50] {
        let mut naive = conn_core::QueryStats::default();
        for q in &w.queries {
            let (_, s) = naive_conn_by_onn(&w.data_tree, &w.obstacle_tree, q, m, 1, &cfg);
            naive.accumulate(&s);
        }
        let n = naive.averaged(w.queries.len() as u64);
        println!(
            "{:<16} {:>10.3} {:>9.3} {:>9.1} {:>9.1}",
            format!("naive m={m}"),
            n.total_s,
            n.cpu_s,
            n.reads,
            n.faults
        );
    }
    println!("(naive sampling is also *inexact between samples*; the exact");
    println!(" algorithm reports every split point — see paper §1/§2.2)");
}

/// Figure 9: performance vs query length (CL, k = 5).
fn fig9(args: &Args) {
    println!("\n## Figure 9 — COkNN vs query length ql (CL, k = 5)");
    print_header("ql (% side)");
    let cfg = ConnConfig::default();
    for ql_pct in [1.5, 3.0, 4.5, 6.0, 7.5] {
        let w = Workload::cl(args.scale, ql_pct / 100.0, args.queries, args.seed);
        let avg = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
        print_row(&format!("{ql_pct}"), &avg, w.full_vg_vertices());
    }
}

/// Figure 10: performance vs k (CL, ql = 4.5 %).
fn fig10(args: &Args) {
    println!("\n## Figure 10 — COkNN vs k (CL, ql = 4.5%)");
    print_header("k");
    let cfg = ConnConfig::default();
    let w = Workload::cl(args.scale, DEFAULT_QL, args.queries, args.seed);
    for k in [1usize, 3, 5, 7, 9] {
        let avg = w.run_two_tree(k, &cfg, 0.0, 0);
        print_row(&format!("{k}"), &avg, w.full_vg_vertices());
    }
}

/// Figure 11: performance vs |P|/|O| (UL and ZL, k = 5, ql = 4.5 %).
fn fig11(args: &Args) {
    let cfg = ConnConfig::default();
    for combo in [Combo::Ul, Combo::Zl] {
        println!(
            "\n## Figure 11 — COkNN vs |P|/|O| ({}, k = 5, ql = 4.5%)",
            combo.label()
        );
        print_header("|P|/|O|");
        for ratio in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let w = Workload::with_ratio(
                combo,
                args.scale,
                ratio,
                DEFAULT_QL,
                args.queries,
                args.seed,
            );
            let avg = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
            print_row(&format!("{ratio}"), &avg, w.full_vg_vertices());
        }
    }
}

/// Figure 12: performance vs LRU buffer size (CL and UL, k = 5, ql = 4.5 %).
fn fig12(args: &Args) {
    let cfg = ConnConfig::default();
    let warmup = args.queries / 2; // paper: first 50 of 100 warm the buffer
    for combo in [Combo::Cl, Combo::Ul] {
        println!(
            "\n## Figure 12 — COkNN vs buffer size ({}, k = 5, ql = 4.5%)",
            combo.label()
        );
        print_header("buffer (%)");
        let w = match combo {
            Combo::Cl => Workload::cl(args.scale, DEFAULT_QL, args.queries, args.seed),
            _ => Workload::with_ratio(combo, args.scale, 1.0, DEFAULT_QL, args.queries, args.seed),
        };
        for bs_pct in [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let avg = w.run_two_tree(DEFAULT_K, &cfg, bs_pct / 100.0, warmup);
            print_row(&format!("{bs_pct}"), &avg, w.full_vg_vertices());
        }
    }
}

/// Figure 13: one unified R-tree (1T) vs two R-trees (2T), across ql, k and
/// |P|/|O|.
fn fig13(args: &Args) {
    let cfg = ConnConfig::default();

    println!("\n## Figure 13(a,b) — 1T vs 2T across ql (CL and UL, k = 5)");
    for combo in [Combo::Cl, Combo::Ul] {
        println!("-- {} --", combo.label());
        println!(
            "{:<14} {:>12} {:>12}",
            "ql (% side)", "2T total(s)", "1T total(s)"
        );
        for ql_pct in [1.5, 3.0, 4.5, 6.0, 7.5] {
            let w = match combo {
                Combo::Cl => Workload::cl(args.scale, ql_pct / 100.0, args.queries, args.seed),
                _ => Workload::with_ratio(
                    combo,
                    args.scale,
                    1.0,
                    ql_pct / 100.0,
                    args.queries,
                    args.seed,
                ),
            };
            let two = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
            let one = w.run_one_tree(DEFAULT_K, &cfg, 0.0, 0);
            println!("{:<14} {:>12.3} {:>12.3}", ql_pct, two.total_s, one.total_s);
        }
    }

    println!("\n## Figure 13(c,d) — 1T vs 2T across k (CL and UL, ql = 4.5%)");
    for combo in [Combo::Cl, Combo::Ul] {
        println!("-- {} --", combo.label());
        println!("{:<14} {:>12} {:>12}", "k", "2T total(s)", "1T total(s)");
        let w = match combo {
            Combo::Cl => Workload::cl(args.scale, DEFAULT_QL, args.queries, args.seed),
            _ => Workload::with_ratio(combo, args.scale, 1.0, DEFAULT_QL, args.queries, args.seed),
        };
        for k in [1usize, 3, 5, 7, 9] {
            let two = w.run_two_tree(k, &cfg, 0.0, 0);
            let one = w.run_one_tree(k, &cfg, 0.0, 0);
            println!("{:<14} {:>12.3} {:>12.3}", k, two.total_s, one.total_s);
        }
    }

    println!("\n## Figure 13(e,f) — 1T vs 2T across |P|/|O| (UL and ZL, k = 5, ql = 4.5%)");
    for combo in [Combo::Ul, Combo::Zl] {
        println!("-- {} --", combo.label());
        println!(
            "{:<14} {:>12} {:>12}",
            "|P|/|O|", "2T total(s)", "1T total(s)"
        );
        for ratio in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let w = Workload::with_ratio(
                combo,
                args.scale,
                ratio,
                DEFAULT_QL,
                args.queries,
                args.seed,
            );
            let two = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
            let one = w.run_one_tree(DEFAULT_K, &cfg, 0.0, 0);
            println!("{:<14} {:>12.3} {:>12.3}", ratio, two.total_s, one.total_s);
        }
    }
}

/// Ablation (DESIGN.md A1): pruning lemmas and the strict refinement loop.
fn ablation(args: &Args) {
    println!("\n## Ablation — pruning lemmas & strict mode (UL, k = 5, ql = 4.5%)");
    let w = Workload::with_ratio(
        Combo::Ul,
        args.scale,
        1.0,
        DEFAULT_QL,
        args.queries,
        args.seed,
    );
    print_header("config");
    let configs: [(&str, ConnConfig); 5] = [
        ("all-on", ConnConfig::default()),
        ("paper(literal)", ConnConfig::paper()),
        (
            "no-lemma1",
            ConnConfig {
                use_lemma1: false,
                ..ConnConfig::default()
            },
        ),
        (
            "no-lemma6",
            ConnConfig {
                use_lemma6: false,
                ..ConnConfig::default()
            },
        ),
        (
            "no-lemma7",
            ConnConfig {
                use_lemma7: false,
                ..ConnConfig::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let avg = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
        print_row(label, &avg, w.full_vg_vertices());
    }
}
