//! `repro` — regenerates every table/figure series of the paper's
//! evaluation (§5) as text tables, plus the post-paper batch scenario.
//!
//! ```text
//! repro [TARGET | --target TARGET] [--scale S] [--queries N] [--seed S]
//!       [--batch] [--sanitize] [--sweep on|off|auto] [--threads T]
//!       [--out FILE.json]
//! ```
//!
//! * `TARGET` — `fig9`…`fig13`, `ablation`, `motivation`, `all`; plus
//!   `conn` (the obstructed-distance kernel benchmark: blind baseline vs
//!   goal-directed + continued, recorded in `BENCH_conn.json`), `batch`
//!   (the batch-layer comparison; `--batch` is shorthand for it), and
//!   `traj` (cold per-leg trajectory CONN vs warm `TrajectorySession`,
//!   recorded in `BENCH_traj.json`; `--queries` sets the trajectory
//!   count), and `serve` (the concurrent-serving harness: multi-client
//!   admission + coalesced batches + a live epoch publisher over a sharded
//!   service, recorded in `BENCH_serve.json`; `--threads` sets the pump's
//!   worker count).
//! * `--scale` — dataset scale relative to the paper's cardinalities
//!   (|LA| = 131,461): `smoke`/`small` (1/256), `default` (1/16), `paper`
//!   (1), or a ratio like `0.125`. The `conn` target defaults to `paper`;
//!   the figure sweeps default to `default`.
//! * `--queries` — workload size per setting (paper: 100; default here 20;
//!   the conn target defaults to 48 so p50/p99 are distinct samples, and
//!   the batch target to 64).
//! * `--threads` — batch worker-pool size (0 = available parallelism).
//! * `--out` — where the `batch` / `conn` targets write their JSON records
//!   (defaults `BENCH_batch.json` / `BENCH_conn.json`).
//! * `--sanitize` — (conn target; requires a binary built with
//!   `--features sanitize-invariants`) additionally times the kernel with
//!   the runtime invariant audits off and on, asserts the answers are
//!   identical, and records the informational `sanitize_overhead_pct` in
//!   `BENCH_conn.json`.
//! * `--sweep` — forces the rotational plane-sweep adjacency builder `on`
//!   (always) or `off` (per-candidate grid walks); `auto` (the default)
//!   lets the candidate count decide. Results are bit-identical either
//!   way; the conn target records `sweep_events` so the setting is
//!   visible in `BENCH_conn.json`.
//!
//! Absolute numbers differ from the paper (different hardware, synthetic
//! stand-ins for CA/LA, reduced scale); the *shapes* — who wins, what grows
//! with what — are the reproduction target. See EXPERIMENTS.md.

use std::time::Instant;

use conn_bench::{
    conn_results_equivalent, conn_results_identical, print_header, print_row, Scale, Workload,
};
use conn_core::{ConnConfig, SweepMode};
use conn_datasets::{Combo, DEFAULT_K, DEFAULT_QL};

struct Args {
    what: String,
    scale: Option<Scale>,
    queries: Option<usize>,
    seed: u64,
    threads: usize,
    out: Option<String>,
    sanitize: bool,
    sweep: SweepMode,
}

impl Args {
    /// Resolved scale: an explicit `--scale` wins; otherwise the conn
    /// kernel and serving targets run at paper scale (their layouts are
    /// sized for it) and the figure sweeps keep the reduced default.
    fn scale(&self) -> Scale {
        self.scale.unwrap_or(
            if self.what == "conn" || self.what == "serve" || self.what == "live" {
                Scale::PAPER
            } else {
                Scale::DEFAULT
            },
        )
    }

    fn queries(&self) -> usize {
        self.queries.unwrap_or(20)
    }

    /// The conn kernel records latency percentiles, so its default
    /// workload is large enough for p50/p99 to be distinct samples.
    fn conn_queries(&self) -> usize {
        self.queries.unwrap_or(48)
    }

    /// The batch target defaults to the acceptance workload of 64 queries.
    fn batch_queries(&self) -> usize {
        self.queries.unwrap_or(64)
    }

    /// The serve target defaults to 40 queries per client (5 families × 8
    /// segments), enough distinct latency samples for p99/p99.9.
    fn serve_queries(&self) -> usize {
        self.queries.unwrap_or(40)
    }

    /// The live target defaults to 12 standing queries (2 per certified
    /// family) patched across the delta stream.
    fn live_queries(&self) -> usize {
        self.queries.unwrap_or(12).max(1)
    }

    /// Where the selected target writes its JSON record.
    fn out(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }

    /// Workload size actually used by the selected target (for the header).
    fn effective_queries(&self) -> usize {
        match self.what.as_str() {
            "batch" => self.batch_queries(),
            "conn" => self.conn_queries(),
            "serve" => self.serve_queries(),
            "live" => self.live_queries(),
            _ => self.queries(),
        }
    }
}

const KNOWN_TARGETS: [&str; 13] = [
    "all",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation",
    "motivation",
    "conn",
    "batch",
    "traj",
    "serve",
    "live",
];

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: repro [{} | --target T] [--scale smoke|small|default|paper|RATIO] \
         [--queries N] [--seed S] [--batch] [--sanitize] [--sweep on|off|auto] \
         [--threads T] [--out FILE.json]",
        KNOWN_TARGETS.join("|")
    );
    std::process::exit(2);
}

fn flag_value(argv: &[String], i: usize) -> &str {
    argv.get(i)
        .map(String::as_str)
        .unwrap_or_else(|| usage(&format!("{} requires a value", argv[i - 1])))
}

fn parse_args() -> Args {
    let mut what = "all".to_string();
    let mut scale: Option<Scale> = None;
    let mut queries: Option<usize> = None;
    let mut seed = 2009u64;
    let mut threads = 0usize;
    let mut out: Option<String> = None;
    let mut sanitize = false;
    let mut sweep = SweepMode::Auto;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Some(match flag_value(&argv, i) {
                    "smoke" | "small" => Scale::SMOKE,
                    "default" => Scale::DEFAULT,
                    "paper" => Scale::PAPER,
                    s => Scale(s.parse().unwrap_or_else(|_| {
                        usage(&format!(
                            "--scale must be smoke, small, default, paper, or a ratio (got {s:?})"
                        ))
                    })),
                });
            }
            "--queries" => {
                i += 1;
                queries = Some(flag_value(&argv, i).parse().unwrap_or_else(|_| {
                    usage(&format!("--queries must be a number (got {:?})", argv[i]))
                }));
            }
            "--seed" => {
                i += 1;
                seed = flag_value(&argv, i).parse().unwrap_or_else(|_| {
                    usage(&format!("--seed must be a number (got {:?})", argv[i]))
                });
            }
            "--threads" => {
                i += 1;
                threads = flag_value(&argv, i).parse().unwrap_or_else(|_| {
                    usage(&format!("--threads must be a number (got {:?})", argv[i]))
                });
            }
            "--out" => {
                i += 1;
                out = Some(flag_value(&argv, i).to_string());
            }
            "--target" => {
                i += 1;
                let t = flag_value(&argv, i);
                if !KNOWN_TARGETS.contains(&t) {
                    usage(&format!("unknown target {t:?}"));
                }
                what = t.to_string();
            }
            "--batch" => what = "batch".to_string(),
            "--sanitize" => sanitize = true,
            "--sweep" => {
                i += 1;
                sweep = match flag_value(&argv, i) {
                    "on" | "always" => SweepMode::Always,
                    "off" | "never" => SweepMode::Never,
                    "auto" => SweepMode::Auto,
                    s => usage(&format!("--sweep must be on, off, or auto (got {s:?})")),
                };
            }
            other if KNOWN_TARGETS.contains(&other) => what = other.to_string(),
            other => usage(&format!("unknown target {other:?}")),
        }
        i += 1;
    }
    if sanitize {
        match what.as_str() {
            // --sanitize alone implies the conn target it instruments.
            "all" => what = "conn".to_string(),
            "conn" => {}
            other => usage(&format!(
                "--sanitize applies to the conn target only (got {other:?})"
            )),
        }
        if !conn_geom::sanitize::compiled() {
            eprintln!(
                "error: --sanitize needs the invariant audits compiled in; rebuild with\n  \
                 cargo run --release -p conn-bench --features sanitize-invariants \
                 --bin repro -- conn --sanitize"
            );
            std::process::exit(2);
        }
    }
    Args {
        what,
        scale,
        queries,
        seed,
        threads,
        out,
        sanitize,
        sweep,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "# CONN reproduction — scale {:.4} (|O| = {}, |P|_CA = {}), {} queries/setting, seed {}",
        args.scale().0,
        args.scale().obstacles(),
        args.scale().ca_points(),
        args.effective_queries(),
        args.seed
    );
    let all = args.what == "all";
    if all || args.what == "fig9" {
        fig9(&args);
    }
    if all || args.what == "fig10" {
        fig10(&args);
    }
    if all || args.what == "fig11" {
        fig11(&args);
    }
    if all || args.what == "fig12" {
        fig12(&args);
    }
    if all || args.what == "fig13" {
        fig13(&args);
    }
    if all || args.what == "ablation" {
        ablation(&args);
    }
    if all || args.what == "motivation" {
        motivation(&args);
    }
    // post-paper targets (not part of `all`: they measure this repo's
    // serving layer, not the paper's figures)
    if args.what == "conn" {
        conn_smoke(&args);
    }
    if args.what == "batch" {
        batch(&args);
    }
    if args.what == "traj" {
        traj(&args);
    }
    if args.what == "serve" {
        serve(&args);
    }
    if args.what == "live" {
        live(&args);
    }
}

/// `live`: the live-scene mutation benchmark — a standing-query set kept
/// resident and *patched* per [`conn_core::SceneDelta`] (surgical
/// invalidation, certificate regions) vs the republish-and-rerun baseline
/// (rebuild both trees, publish a full epoch, re-execute every query).
/// Single-obstacle deltas are the measured stream (the acceptance gate:
/// patching ≥ 2× faster); a site-delta coda exercises the tuple-patch and
/// membership paths. Every patched answer is asserted 1e-6-equivalent to
/// the rerun answer after every delta. Records `BENCH_live.json`.
fn live(args: &Args) {
    use conn_core::{
        answers_equivalent, Answer, ConnService, LiveScene, PatchReport, Query, Scene,
    };
    use conn_datasets::la_like;

    let scale = args.scale();
    let n_standing = args.live_queries();
    let cfg = ConnConfig {
        sweep: args.sweep,
        ..ConnConfig::default()
    };
    let w = Workload::cl(scale, DEFAULT_QL, n_standing, args.seed);

    // one standing query per segment, cycling through the certified
    // families (conn / coknn / onn / range / odist / route)
    let standing_queries: Vec<Query> = w
        .queries
        .iter()
        .enumerate()
        .map(|(i, seg)| {
            match i % 6 {
                0 => Query::conn(*seg),
                1 => Query::coknn(*seg, DEFAULT_K),
                2 => Query::onn(seg.a, DEFAULT_K),
                3 => Query::range(seg.a, seg.a.dist(seg.b)),
                4 => Query::odist(seg.a, seg.b),
                _ => Query::route(seg.a, seg.b),
            }
            .build()
            .expect("generated query validates")
        })
        .collect();

    // the measured delta stream: obstacle insert/remove pairs, drawn from
    // the same generator as the scene so footprints are paper-shaped.
    // Deltas that land *on* a standing query are excluded: an obstacle
    // overlapping a conn/coknn segment or swallowing a point anchor makes
    // sub-queries unreachable by definition — the paper's model keeps
    // query paths in free space, and such a delta degenerates both sides
    // of the comparison identically (nothing left to measure).
    let clear_of_standing = |r: &conn_geom::Rect| {
        w.queries.iter().enumerate().all(|(i, seg)| match i % 6 {
            0 | 1 => r.mindist_segment(seg) > 0.0,
            2 | 3 => !r.strictly_contains(seg.a),
            _ => !r.strictly_contains(seg.a) && !r.strictly_contains(seg.b),
        })
    };
    // Half the stream is drawn blind; the other half is re-centered onto
    // standing odist/route segments so the kernel-patch path (surgical
    // absorb + paths-only-shorten reseed) is exercised at every scale,
    // not only when a random rect happens to fall inside a kernel's
    // ellipse. Re-centering keeps the paper-shaped footprints.
    let kernel_segs: Vec<_> = w
        .queries
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 6 >= 4)
        .map(|(_, s)| *s)
        .collect();
    // Footprints are capped at half the segment length so the forced
    // detour stays within the kernel's resident ellipse (the absorb path,
    // not the overflow-rebuild path) and the query stays tractable for
    // the rerun side — a wall dwarfing the segment measures detour
    // search, not delta repair, on both sides equally.
    let centered: Vec<conn_geom::Rect> = la_like(64, args.seed.wrapping_add(8))
        .into_iter()
        .zip(kernel_segs.iter().cycle())
        .filter_map(|(r, seg)| {
            let m = seg.at(0.5 * seg.len());
            let f = (0.4 * seg.len() / r.width().max(r.height())).min(1.0);
            let (hw, hh) = (0.5 * f * r.width(), 0.5 * f * r.height());
            let c = conn_geom::Rect::new(m.x - hw, m.y - hh, m.x + hw, m.y + hh);
            clear_of_standing(&c).then_some(c)
        })
        .take(6)
        .collect();
    let extra: Vec<conn_geom::Rect> = centered
        .iter()
        .copied()
        .chain(
            la_like(64, args.seed.wrapping_add(7))
                .into_iter()
                .filter(clear_of_standing),
        )
        .take(12)
        .collect();

    // patched side: the live scene with the standing set resident
    eprintln!(
        "live: building scene ({} points, {} obstacles), registering {} standing queries",
        w.points.len(),
        w.obstacles.len(),
        n_standing
    );
    let t_setup = Instant::now();
    let mut live = LiveScene::new(w.points.clone(), w.obstacles.clone(), cfg);
    let handles: Vec<_> = standing_queries
        .iter()
        .map(|q| live.service().register(q.clone()).expect("register"))
        .collect();
    eprintln!(
        "live: setup done in {:.1}s",
        t_setup.elapsed().as_secs_f64()
    );

    // rerun side: same initial world, republished + re-executed per delta
    let baseline = ConnService::with_config(Scene::new(w.points.clone(), w.obstacles.clone()), cfg);
    let mut base_points = w.points.clone();
    let mut base_obstacles = w.obstacles.clone();

    let mut patch_lat: Vec<f64> = Vec::new();
    let mut rerun_lat: Vec<f64> = Vec::new();
    let mut reports: Vec<PatchReport> = Vec::new();
    let mut results_equivalent = true;

    let mut check = |live: &LiveScene, rerun: &[Answer], ctx: &str| {
        for ((h, q), want) in handles.iter().zip(&standing_queries).zip(rerun) {
            let got = live.service().standing(h).expect("standing answer");
            if !answers_equivalent(&got, want, 1e-6) {
                results_equivalent = false;
                println!("DIVERGED ({ctx}): {:?}", q.kind());
            }
        }
    };

    let trace = std::env::var_os("CONN_LIVE_TRACE").is_some();
    let rerun_baseline =
        |points: &[conn_core::DataPoint], obstacles: &[conn_geom::Rect]| -> (f64, Vec<Answer>) {
            let t = Instant::now();
            baseline.publish(Scene::new(points.to_vec(), obstacles.to_vec()));
            let answers: Vec<Answer> = standing_queries
                .iter()
                .enumerate()
                .map(|(qi, q)| {
                    let tq = Instant::now();
                    if trace {
                        eprintln!("trace: rerun q{qi} {:?}", q.kind());
                    }
                    let a = baseline.execute(q).expect("baseline execute").answer;
                    if trace {
                        eprintln!(
                            "trace: rerun q{qi} done in {:.1} ms",
                            tq.elapsed().as_secs_f64() * 1e3
                        );
                    }
                    a
                })
                .collect();
            (t.elapsed().as_secs_f64(), answers)
        };

    for (i, r) in extra.iter().enumerate() {
        // insert the obstacle...
        eprintln!("live: pair {}: patching insert", i + 1);
        let t = Instant::now();
        let (_, report) = live.insert_obstacle(*r);
        patch_lat.push(t.elapsed().as_secs_f64());
        reports.push(report);
        base_obstacles.push(*r);
        eprintln!("live: pair {}: rerunning insert", i + 1);
        let (dt, answers) = rerun_baseline(&base_points, &base_obstacles);
        rerun_lat.push(dt);
        check(&live, &answers, &format!("insert #{i}"));

        // ...and take it back out (the paths-only-shorten path)
        eprintln!("live: pair {}: patching remove", i + 1);
        let t = Instant::now();
        let (_, report) = live.remove_obstacle(r).expect("just inserted");
        patch_lat.push(t.elapsed().as_secs_f64());
        reports.push(report);
        let pos = base_obstacles
            .iter()
            .rposition(|o| o == r)
            .expect("mirrored insert");
        base_obstacles.remove(pos);
        eprintln!("live: pair {}: rerunning remove", i + 1);
        let (dt, answers) = rerun_baseline(&base_points, &base_obstacles);
        rerun_lat.push(dt);
        check(&live, &answers, &format!("remove #{i}"));
        eprintln!(
            "live: delta pair {}/{} done (patch {:.1} ms + {:.1} ms, rerun {:.1} ms + {:.1} ms)",
            i + 1,
            extra.len(),
            patch_lat[patch_lat.len() - 2] * 1e3,
            patch_lat[patch_lat.len() - 1] * 1e3,
            rerun_lat[rerun_lat.len() - 2] * 1e3,
            rerun_lat[rerun_lat.len() - 1] * 1e3,
        );
    }

    // site-delta coda (unmeasured): tuple patches and membership repairs
    let coda = conn_datasets::uniform_points(4, args.seed.wrapping_add(9), &base_obstacles);
    for (i, p) in coda.iter().enumerate() {
        let dp = conn_core::DataPoint::new(900_000 + i as u32, *p);
        let (_, report) = live.insert_site(dp);
        reports.push(report);
        base_points.push(dp);
        let (_, answers) = rerun_baseline(&base_points, &base_obstacles);
        check(&live, &answers, &format!("site insert #{i}"));
    }
    for i in 0..2usize {
        let victim = base_points[(i * 7) % base_points.len()];
        if let Some((_, report)) = live.remove_site(victim.pos) {
            reports.push(report);
            let pos = base_points
                .iter()
                .position(|q| q.pos == victim.pos)
                .expect("mirrored point");
            base_points.remove(pos);
            let (_, answers) = rerun_baseline(&base_points, &base_obstacles);
            check(&live, &answers, &format!("site remove #{i}"));
        }
    }

    let pct = |lat: &mut Vec<f64>, p: f64| -> f64 {
        lat.sort_by(|x, y| x.total_cmp(y));
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx] * 1e3
    };
    let deltas = patch_lat.len();
    let patch_total: f64 = patch_lat.iter().sum();
    let rerun_total: f64 = rerun_lat[..deltas].iter().sum();
    let speedup = rerun_total / patch_total.max(1e-12);
    let patch_p50 = pct(&mut patch_lat, 0.50);
    let patch_p99 = pct(&mut patch_lat, 0.99);
    let rerun_p50 = pct(&mut rerun_lat, 0.50);
    let rerun_p99 = pct(&mut rerun_lat, 0.99);

    let sum = |f: fn(&PatchReport) -> u64| -> u64 { reports.iter().map(f).sum() };
    let labels = sum(|r| r.labels_invalidated);
    let repairs = sum(|r| r.adjacency_repairs);
    let kept = sum(|r| r.kept as u64);
    let tuple_patched = sum(|r| r.tuple_patched as u64);
    let kernel_patched = sum(|r| r.kernel_patched as u64);
    let recomputed = sum(|r| r.recomputed as u64);
    let delta_publishes = live.service().reuse_totals().delta_publishes;

    println!("{:<34} {:>12}", "metric", "value");
    println!("{:<34} {:>12}", "standing queries", n_standing);
    println!("{:<34} {:>12}", "obstacle deltas (measured)", deltas);
    println!(
        "{:<34} {:>12.1}",
        "patch deltas/sec",
        deltas as f64 / patch_total
    );
    println!(
        "{:<34} {:>12.1}",
        "rerun deltas/sec",
        deltas as f64 / rerun_total
    );
    println!("{:<34} {:>11.2}x", "patch speedup vs rerun", speedup);
    println!("{:<34} {:>12.3}", "patch p50 (ms)", patch_p50);
    println!("{:<34} {:>12.3}", "patch p99 (ms)", patch_p99);
    println!("{:<34} {:>12.3}", "rerun p50 (ms)", rerun_p50);
    println!("{:<34} {:>12.3}", "rerun p99 (ms)", rerun_p99);
    println!(
        "{:<34} {:>12.1}",
        "labels invalidated / delta",
        labels as f64 / delta_publishes.max(1) as f64
    );
    println!(
        "{:<34} {:>12.1}",
        "adjacency repairs / delta",
        repairs as f64 / delta_publishes.max(1) as f64
    );
    println!(
        "{:<34} {:>12}",
        "kept / tuple / kernel / recomputed",
        format!("{kept}/{tuple_patched}/{kernel_patched}/{recomputed}")
    );
    println!("{:<34} {:>12}", "delta publishes", delta_publishes);
    println!(
        "{:<34} {:>12}",
        "results equivalent (1e-6)", results_equivalent
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"standing\": {},\n  \"deltas\": {},\n  \
         \"patch_deltas_per_sec\": {:.2},\n  \"rerun_deltas_per_sec\": {:.2},\n  \
         \"speedup_patch_vs_rerun\": {:.4},\n  \"patch_p50_ms\": {:.4},\n  \
         \"patch_p99_ms\": {:.4},\n  \"rerun_p50_ms\": {:.4},\n  \
         \"rerun_p99_ms\": {:.4},\n  \"labels_invalidated_per_delta\": {:.2},\n  \
         \"adjacency_repairs_per_delta\": {:.2},\n  \"kept\": {},\n  \
         \"tuple_patched\": {},\n  \"kernel_patched\": {},\n  \
         \"recomputed\": {},\n  \"delta_publishes\": {},\n  \
         \"results_equivalent\": {}\n}}\n",
        scale.0,
        n_standing,
        deltas,
        deltas as f64 / patch_total,
        deltas as f64 / rerun_total,
        speedup,
        patch_p50,
        patch_p99,
        rerun_p50,
        rerun_p99,
        labels as f64 / delta_publishes.max(1) as f64,
        repairs as f64 / delta_publishes.max(1) as f64,
        kept,
        tuple_patched,
        kernel_patched,
        recomputed,
        delta_publishes,
        results_equivalent,
    );
    let out = args.out("BENCH_live.json");
    std::fs::write(&out, json).expect("write live record");
    println!("recorded {out}");
}

/// `traj`: the trajectory-session benchmark — cold per-leg execution
/// (every leg a fresh Algorithm-4 run) vs one warm `TrajectorySession`
/// per trajectory, single-threaded, answers asserted equivalent; plus an
/// informational parallel fleet line. Records `BENCH_traj.json`.
fn traj(args: &Args) {
    use conn_bench::trajectory_results_equivalent;
    use conn_core::{trajectory_conn_batch, trajectory_conn_search, trajectory_conn_search_cold};

    let n_traj = args.queries.unwrap_or(12).max(1);
    // 8 legs of 7% of the space side each (the top of the paper's Figure 9
    // ql range): long legs are where cold per-leg execution hurts most —
    // every leg re-pays an unbounded first-point cover of a long segment
    // that the session's seeded joint bound caps.
    let legs = 8usize;
    let traj_ql = 0.07;
    println!("\n## Trajectory sessions — UL, k = 1, {n_traj} trajectories × {legs} legs (ql = 7%)");
    let w = Workload::with_ratio(Combo::Ul, args.scale(), 1.0, DEFAULT_QL, 1, args.seed);
    let routes = w.trajectories(n_traj, legs, traj_ql, args.seed.wrapping_add(7));
    let cfg = ConnConfig::default();

    let timed = |f: &dyn Fn(
        &conn_core::Trajectory,
    ) -> (conn_core::TrajectoryResult, conn_core::QueryStats)|
     -> (
        f64,
        f64,
        f64,
        Vec<conn_core::TrajectoryResult>,
        conn_core::QueryStats,
    ) {
        let mut lat = Vec::with_capacity(routes.len());
        let mut results = Vec::with_capacity(routes.len());
        let mut pooled = conn_core::QueryStats::default();
        let t0 = Instant::now();
        for traj in &routes {
            let tq = Instant::now();
            let (res, stats) = f(traj);
            lat.push(tq.elapsed().as_secs_f64());
            res.check_cover().expect("trajectory cover");
            pooled.accumulate(&stats);
            results.push(res);
        }
        let wall = t0.elapsed().as_secs_f64();
        lat.sort_by(f64::total_cmp);
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        (wall, pct(0.50), pct(0.99), results, pooled)
    };

    let (cold_wall, cold_p50, cold_p99, cold_results, cold_stats) =
        timed(&|t| trajectory_conn_search_cold(&w.data_tree, &w.obstacle_tree, t, &cfg));
    let (sess_wall, sess_p50, sess_p99, sess_results, sess_stats) =
        timed(&|t| trajectory_conn_search(&w.data_tree, &w.obstacle_tree, t, &cfg));

    for (i, (a, b)) in cold_results.iter().zip(&sess_results).enumerate() {
        assert!(
            trajectory_results_equivalent(a, b),
            "session diverged from cold per-leg on trajectory {i}"
        );
    }
    let speedup = cold_wall / sess_wall;

    // informational: the parallel fleet front-end over the same routes
    let (fleet_results, fleet) =
        trajectory_conn_batch(&w.data_tree, &w.obstacle_tree, &routes, &cfg, args.threads);
    for (a, b) in cold_results.iter().zip(&fleet_results) {
        assert!(trajectory_results_equivalent(a, b), "fleet path diverged");
    }

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>9}",
        "path", "wall(s)", "p50(ms)", "p99(ms)", "speedup"
    );
    let row = |label: &str, wall: f64, p50: f64, p99: f64| {
        println!(
            "{label:<28} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x",
            wall,
            p50 * 1e3,
            p99 * 1e3,
            cold_wall / wall
        );
    };
    row("cold per-leg", cold_wall, cold_p50, cold_p99);
    row("session (warm legs)", sess_wall, sess_p50, sess_p99);
    row(
        &format!("fleet batch ({} threads)", fleet.threads),
        fleet.wall.as_secs_f64(),
        fleet.p50_s,
        fleet.p99_s,
    );
    println!(
        "obstacle loads: {} cold vs {} session (dedup across legs); \
         session reuse: {} warm legs, {} Dijkstra reuses, {} continuations, {} reseeds",
        cold_stats.noe,
        sess_stats.noe,
        sess_stats.reuse.graph_reuses,
        sess_stats.reuse.heap_reuses,
        sess_stats.reuse.label_continuations,
        sess_stats.reuse.label_reseeds,
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"trajectories\": {},\n  \"legs\": {},\n  \
         \"cold_wall_s\": {:.6},\n  \"cold_p50_ms\": {:.4},\n  \"cold_p99_ms\": {:.4},\n  \
         \"session_wall_s\": {:.6},\n  \"session_p50_ms\": {:.4},\n  \
         \"session_p99_ms\": {:.4},\n  \"speedup_session_vs_cold\": {:.4},\n  \
         \"fleet_wall_s\": {:.6},\n  \"fleet_threads\": {},\n  \
         \"noe_cold\": {},\n  \"noe_session\": {},\n  \"results_equivalent\": true\n}}\n",
        args.scale().0,
        n_traj,
        legs,
        cold_wall,
        cold_p50 * 1e3,
        cold_p99 * 1e3,
        sess_wall,
        sess_p50 * 1e3,
        sess_p99 * 1e3,
        speedup,
        fleet.wall.as_secs_f64(),
        fleet.threads,
        cold_stats.noe,
        sess_stats.noe,
    );
    let out = args.out("BENCH_traj.json");
    std::fs::write(&out, json).expect("write trajectory record");
    println!("recorded {out}");
}

/// `conn`: the CONN kernel benchmark (also the CI smoke target) — builds a
/// UL workload, answers every query twice (pre-PR baseline kernel: blind
/// Dijkstra / cold heaps, then the goal-directed + continued kernel),
/// asserts bit-identical results, prints averages, and records the wall
/// clock, latency percentiles and speedup in `BENCH_conn.json` so the perf
/// trajectory is visible per PR.
fn conn_smoke(args: &Args) {
    use conn_core::QueryEngine;
    assert!(
        args.conn_queries() >= 1,
        "the conn target needs at least one query (got --queries 0)"
    );
    println!("\n## CONN kernel — UL, k = 1, ql = 4.5%");
    let w = Workload::with_ratio(
        Combo::Ul,
        args.scale(),
        1.0,
        DEFAULT_QL,
        args.conn_queries(),
        args.seed,
    );

    // one timed pass over the workload on a reused engine
    let run = |cfg: &ConnConfig| {
        let mut engine = QueryEngine::new(*cfg);
        let mut acc = conn_core::QueryStats::default();
        let mut results = Vec::with_capacity(w.queries.len());
        let mut lat = Vec::with_capacity(w.queries.len());
        let t0 = Instant::now();
        for q in &w.queries {
            let tq = Instant::now();
            let (res, stats) = engine.conn(&w.data_tree, &w.obstacle_tree, q);
            lat.push(tq.elapsed().as_secs_f64());
            res.check_cover().expect("result must cover the segment");
            acc.accumulate(&stats);
            results.push(res);
        }
        let wall = t0.elapsed().as_secs_f64();
        lat.sort_by(f64::total_cmp);
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        (wall, pct(0.50), pct(0.99), acc, results)
    };

    // With --sanitize the headline walls stay comparable to unsanitized
    // runs: audits are switched off for them and measured separately below.
    if args.sanitize {
        conn_geom::sanitize::set_enabled(false);
    }
    // --sweep applies to both kernels so the recorded speedup isolates the
    // goal-directed machinery, not the adjacency builder.
    let tune = |mut cfg: ConnConfig| {
        cfg.sweep = args.sweep;
        cfg
    };
    let (base_wall, base_p50, base_p99, _, base_results) =
        run(&tune(ConnConfig::baseline_kernel()));
    let (goal_wall, goal_p50, goal_p99, acc, goal_results) = run(&tune(ConnConfig::default()));
    assert!(
        conn_results_equivalent(&base_results, &goal_results),
        "goal-directed kernel diverged from the blind baseline"
    );
    let speedup = base_wall / goal_wall;

    print_header("queries");
    print_row(
        &format!("{}", w.queries.len()),
        &acc.averaged(w.queries.len() as u64),
        w.full_vg_vertices(),
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>9}",
        "kernel", "wall(s)", "p50(ms)", "p99(ms)", "speedup"
    );
    println!(
        "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x",
        "blind (baseline)",
        base_wall,
        base_p50 * 1e3,
        base_p99 * 1e3,
        1.0
    );
    println!(
        "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x",
        "goal-directed + continued",
        goal_wall,
        goal_p50 * 1e3,
        goal_p99 * 1e3,
        speedup
    );
    println!(
        "reuse: {} graph reuses, {} node slots retained, {} Dijkstra reuses, \
         {} label continuations, {} label reseeds",
        acc.reuse.graph_reuses,
        acc.reuse.nodes_retained,
        acc.reuse.heap_reuses,
        acc.reuse.label_continuations,
        acc.reuse.label_reseeds
    );
    println!(
        "substrate: {} sight tests ({:.0} per query), {} sweep events ({:.0} per query)",
        acc.reuse.sight_tests,
        acc.reuse.sight_tests as f64 / w.queries.len().max(1) as f64,
        acc.reuse.sweep_events,
        acc.reuse.sweep_events as f64 / w.queries.len().max(1) as f64
    );

    // --sanitize: time the production kernel with audits off vs on (same
    // binary, runtime switch), best-of-3 minima on both sides of the ratio,
    // and require byte-identical answers.
    let sanitize_overhead_pct = if args.sanitize {
        let best = |on: bool| {
            conn_geom::sanitize::set_enabled(on);
            let mut wall = f64::INFINITY;
            let mut results = Vec::new();
            for _ in 0..3 {
                let (w, _, _, _, r) = run(&tune(ConnConfig::default()));
                wall = wall.min(w);
                results = r;
            }
            (wall, results)
        };
        let (off_wall, off_results) = best(false);
        let (on_wall, on_results) = best(true);
        conn_geom::sanitize::set_enabled(true);
        assert!(
            conn_results_identical(&off_results, &on_results),
            "sanitized run diverged from the unsanitized run"
        );
        let pct = (on_wall / off_wall - 1.0) * 100.0;
        println!(
            "sanitize-invariants: audits off {:.3}s vs on {:.3}s — overhead {:+.2}% \
             (informational), answers identical",
            off_wall, on_wall, pct
        );
        format!("{pct:.4}")
    } else {
        "null".to_string()
    };

    let n = w.queries.len();
    let json = format!(
        "{{\n  \"scale\": {},\n  \"queries\": {},\n  \"wall_s\": {:.6},\n  \
         \"latency_p50_ms\": {:.4},\n  \"latency_p99_ms\": {:.4},\n  \
         \"baseline_wall_s\": {:.6},\n  \"baseline_p50_ms\": {:.4},\n  \
         \"baseline_p99_ms\": {:.4},\n  \"speedup_vs_baseline_kernel\": {:.4},\n  \
         \"throughput_qps\": {:.2},\n  \"label_continuations\": {},\n  \
         \"label_reseeds\": {},\n  \"sight_tests\": {},\n  \
         \"sight_tests_per_query\": {:.1},\n  \"sweep_events\": {},\n  \
         \"sweep_events_per_query\": {:.1},\n  \"sanitize_overhead_pct\": {},\n  \
         \"results_equivalent\": true\n}}\n",
        args.scale().0,
        n,
        goal_wall,
        goal_p50 * 1e3,
        goal_p99 * 1e3,
        base_wall,
        base_p50 * 1e3,
        base_p99 * 1e3,
        speedup,
        n as f64 / goal_wall,
        acc.reuse.label_continuations,
        acc.reuse.label_reseeds,
        acc.reuse.sight_tests,
        acc.reuse.sight_tests as f64 / n.max(1) as f64,
        acc.reuse.sweep_events,
        acc.reuse.sweep_events as f64 / n.max(1) as f64,
        sanitize_overhead_pct,
    );
    let out = args.out("BENCH_conn.json");
    std::fs::write(&out, json).expect("write conn kernel record");
    println!("recorded {out}");
}

/// `batch`: the batch-layer comparison — legacy one-shot loop vs serial
/// engine reuse vs the parallel batch front-end vs the typed
/// `ConnService::execute_batch` dispatch, on a mixed workload. Asserts
/// identical results across all four paths and records the numbers
/// (including the service dispatch overhead) as JSON.
fn batch(args: &Args) {
    use conn_core::{ConnService, Query, Scene};

    let n_queries = args.batch_queries();
    println!("\n## Batch layer — mixed workload (uniform + clustered + trajectory), k = 1");
    let w = Workload::build_mixed(
        Combo::Ul,
        args.scale().obstacles(),
        args.scale().obstacles(),
        DEFAULT_QL,
        n_queries,
        args.seed,
    );
    let cfg = ConnConfig::default();

    let t0 = Instant::now();
    let serial = w.run_conn_serial(&cfg);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (engine_results, engine_pooled) = w.run_conn_engine(&cfg);
    let engine_s = t1.elapsed().as_secs_f64();

    // single-run walls stay the recorded batch_s / service_batch_s (the
    // same estimator as serial_s and engine_s, so the speedup series in
    // BENCH_batch.json keeps its meaning run over run)
    let (batch_results, stats) = w.run_conn_batch(&cfg, args.threads);
    let batch_s = stats.wall.as_secs_f64();

    // the same workload through the typed front door: one mixed-capable
    // service batch (here all-CONN, so the answers must be identical)
    let service = ConnService::with_config(Scene::borrowing(&w.data_tree, &w.obstacle_tree), cfg);
    let typed: Vec<Query> = w
        .queries
        .iter()
        .map(|q| Query::conn(*q).build().expect("workload query is valid"))
        .collect();
    let (service_responses, service_stats) = service
        .execute_batch_threads(&typed, args.threads)
        .expect("service batch");
    let service_s = service_stats.wall.as_secs_f64();
    let service_results: Vec<conn_core::ConnResult> = service_responses
        .into_iter()
        .map(|r| r.answer.into_conn().expect("conn answer"))
        .collect();

    // the overhead ratio divides one short wall-clock by another, so it
    // uses best-of-3 minima on BOTH sides (min/min is the stable,
    // apples-to-apples estimator under scheduler noise)
    let mut batch_best = batch_s;
    for _ in 0..2 {
        let (_, again) = w.run_conn_batch(&cfg, args.threads);
        batch_best = batch_best.min(again.wall.as_secs_f64());
    }
    let mut service_best = service_s;
    for _ in 0..2 {
        let (_, again) = service
            .execute_batch_threads(&typed, args.threads)
            .expect("service batch");
        service_best = service_best.min(again.wall.as_secs_f64());
    }
    let service_overhead_pct = (service_best / batch_best - 1.0) * 100.0;

    assert!(
        conn_results_identical(&serial, &engine_results),
        "engine path diverged from the one-shot API"
    );
    assert!(
        conn_results_identical(&serial, &batch_results),
        "batch path diverged from the one-shot API"
    );
    assert!(
        conn_results_identical(&serial, &service_results),
        "service dispatch diverged from the one-shot API"
    );

    println!(
        "{:<26} {:>10} {:>12} {:>9}",
        "path", "total(s)", "qps", "speedup"
    );
    let row = |label: &str, secs: f64| {
        println!(
            "{label:<26} {:>10.3} {:>12.1} {:>8.2}x",
            secs,
            n_queries as f64 / secs,
            serial_s / secs
        );
    };
    row("one-shot API loop", serial_s);
    row("serial engine reuse", engine_s);
    row(&format!("batch ({} threads)", stats.threads), batch_s);
    row(
        &format!("service batch ({} threads)", service_stats.threads),
        service_s,
    );
    println!("service dispatch overhead vs per-family batch: {service_overhead_pct:+.2}%");
    println!(
        "latency: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
        stats.mean_s * 1e3,
        stats.p50_s * 1e3,
        stats.p99_s * 1e3
    );
    println!(
        "reuse: {} graph reuses, {} node slots retained, {} Dijkstra reuses",
        stats.pooled.reuse.graph_reuses,
        stats.pooled.reuse.nodes_retained,
        stats.pooled.reuse.heap_reuses
    );
    println!(
        "engine-path reuse check: {} graph reuses over {} queries",
        engine_pooled.reuse.graph_reuses, n_queries
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"queries\": {},\n  \"threads\": {},\n  \
         \"serial_one_shot_s\": {:.6},\n  \"serial_engine_s\": {:.6},\n  \
         \"batch_s\": {:.6},\n  \"service_batch_s\": {:.6},\n  \
         \"service_overhead_pct\": {:.4},\n  \"speedup_engine\": {:.4},\n  \
         \"speedup_batch\": {:.4},\n  \"throughput_qps\": {:.2},\n  \
         \"latency_mean_ms\": {:.4},\n  \"latency_p50_ms\": {:.4},\n  \
         \"latency_p99_ms\": {:.4},\n  \"graph_reuses\": {},\n  \
         \"nodes_retained\": {},\n  \"heap_reuses\": {}\n}}\n",
        args.scale().0,
        n_queries,
        stats.threads,
        serial_s,
        engine_s,
        batch_s,
        service_s,
        service_overhead_pct,
        serial_s / engine_s,
        serial_s / batch_s,
        stats.throughput_qps,
        stats.mean_s * 1e3,
        stats.p50_s * 1e3,
        stats.p99_s * 1e3,
        stats.pooled.reuse.graph_reuses,
        stats.pooled.reuse.nodes_retained,
        stats.pooled.reuse.heap_reuses,
    );
    let out = args.out("BENCH_batch.json");
    std::fs::write(&out, json).expect("write batch record");
    println!("recorded {out}");
}

/// 1e-6 equivalence between a sharded-service answer and the unsharded
/// single-engine reference for the families the serve workload uses.
/// A certified shard answer may differ from the full-scene answer by
/// rebuilt-tree ULPs (tie-break order on the shard's bulk-loaded trees),
/// never more; range membership may flip only for radius-boundary points.
fn serve_answers_equivalent(
    query: &conn_core::Query,
    a: &conn_core::Answer,
    b: &conn_core::Answer,
) -> bool {
    use conn_core::{Answer, QueryKind};
    const TOL: f64 = 1e-6;
    match (query.kind(), a, b) {
        (QueryKind::Conn { .. }, Answer::Conn(x), Answer::Conn(y)) => x.values_equivalent(y, TOL),
        (QueryKind::Coknn { q, .. }, Answer::Coknn(x), Answer::Coknn(y)) => (0..=8).all(|i| {
            let t = q.len() * i as f64 / 8.0;
            let (vx, vy) = (x.knn_at(t), y.knn_at(t));
            vx.len() == vy.len() && vx.iter().zip(&vy).all(|(p, r)| (p.1 - r.1).abs() <= TOL)
        }),
        (QueryKind::Onn { .. }, Answer::Onn(x), Answer::Onn(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, r)| (p.1 - r.1).abs() <= TOL)
        }
        (QueryKind::Range { radius, .. }, Answer::Range(x), Answer::Range(y)) => {
            [(x, y), (y, x)].iter().all(|(only, other)| {
                only.iter().all(|(p, d)| {
                    other
                        .iter()
                        .any(|(op, od)| op.id == p.id && (od - d).abs() <= TOL)
                        || (d - radius).abs() <= TOL
                })
            })
        }
        (QueryKind::Odist { .. }, Answer::Odist(x), Answer::Odist(y)) => {
            (x.is_infinite() && y.is_infinite()) || (x - y).abs() <= TOL
        }
        _ => false,
    }
}

fn serve(args: &Args) {
    use conn_core::{Admission, AdmissionConfig, ConnService, Query, Scene, ShardSpec};
    use conn_datasets::SPACE_SIDE;
    use std::sync::atomic::{AtomicBool, Ordering};

    let n_queries = args.serve_queries();
    let clients = 4usize;
    let workers = if args.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        args.threads
    };
    println!(
        "\n## Serving layer — {clients} clients × {n_queries} mixed queries, \
         {workers} pump worker(s), live epoch publisher"
    );

    let w = Workload::with_ratio(
        Combo::Ul,
        args.scale(),
        1.0,
        DEFAULT_QL,
        n_queries,
        args.seed,
    );
    let cfg = ConnConfig::default();

    // mixed-family typed workload derived from the CONN segments:
    // conn / coknn / onn / range / odist round-robin
    let typed: Vec<Query> = w
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            match i % 5 {
                0 => Query::conn(*q).build(),
                1 => Query::coknn(*q, DEFAULT_K).build(),
                2 => Query::onn(q.a, DEFAULT_K).build(),
                3 => Query::range(q.a, q.len()).build(),
                _ => Query::odist(q.a, q.b).build(),
            }
            .expect("workload query is valid")
        })
        .collect();

    // serial baseline: an unsharded service driven by a plain execute loop
    // (one query in flight at a time); best-of-3 walls
    let reference = ConnService::with_config(Scene::borrowing(&w.data_tree, &w.obstacle_tree), cfg);
    let t0 = Instant::now();
    let serial: Vec<conn_core::Response> = typed
        .iter()
        .map(|q| reference.execute(q).expect("serial execute"))
        .collect();
    let mut serial_s = t0.elapsed().as_secs_f64();
    for _ in 0..2 {
        let t = Instant::now();
        for q in &typed {
            let _ = reference.execute(q).expect("serial execute");
        }
        serial_s = serial_s.min(t.elapsed().as_secs_f64());
    }
    let serial_qps = typed.len() as f64 / serial_s;

    // the serving side: a sharded service behind the admission front door,
    // with a writer republishing the world as fresh epochs mid-run
    let serving = ConnService::sharded(
        Scene::borrowing(&w.data_tree, &w.obstacle_tree),
        cfg,
        ShardSpec::new(2, 2, 0.2 * SPACE_SIDE).expect("shard spec"),
    );
    let admission = Admission::new(AdmissionConfig {
        max_pending: 1024,
        coalesce: 32,
    });
    let total = (clients * typed.len()) as u64;

    // one full multi-client round: every client submits its whole sweep
    // (a deep queue so coalescing sees real batches) while one pump thread
    // drains it; with `live_writer`, a writer concurrently republishes the
    // world as fresh epochs (bounded at 3 publishes — each is a full shard
    // retiling over |O| obstacles, which would otherwise dominate the
    // measured wall on one core). Returns (wall_s, served, publishes).
    let run_concurrent = |live_writer: bool| -> (f64, u64, u64) {
        let served_before = admission.served();
        let target = admission.served() + admission.rejected() + total;
        let done = AtomicBool::new(false);
        let t1 = Instant::now();
        let mut wall = 0.0f64;
        let mut publishes = 0u64;
        std::thread::scope(|scope| {
            let done_ref = &done;
            let serving_ref = &serving;
            let w_ref = &w;
            let writer = scope.spawn(move || {
                let mut published = 0u64;
                while live_writer && published < 3 && !done_ref.load(Ordering::Relaxed) {
                    serving_ref.publish(Scene::borrowing(&w_ref.data_tree, &w_ref.obstacle_tree));
                    published += 1;
                    std::thread::sleep(std::time::Duration::from_millis(500));
                }
                published
            });
            for _ in 0..clients {
                let admission = &admission;
                let typed = &typed;
                scope.spawn(move || {
                    let tickets: Vec<_> =
                        typed.iter().map(|q| admission.submit(q.clone())).collect();
                    for t in tickets.into_iter().flatten() {
                        let _ = t.wait();
                    }
                });
            }
            let admission = &admission;
            let pump = scope.spawn(move || {
                while admission.served() + admission.rejected() < target {
                    if admission.pump(serving_ref, workers) == 0 {
                        std::thread::yield_now();
                    }
                }
                done_ref.store(true, Ordering::Relaxed);
                t1.elapsed().as_secs_f64()
            });
            wall = pump.join().expect("pump thread");
            publishes = writer.join().expect("writer thread");
        });
        (wall, admission.served() - served_before, publishes)
    };

    // warmup — one unmeasured sweep so the pump's pooled engines are warm
    // before either measured phase (the serial baseline warmed its own)
    {
        let tickets: Vec<_> = typed.iter().map(|q| admission.submit(q.clone())).collect();
        while admission.pending() > 0 {
            admission.pump(&serving, workers);
        }
        for t in tickets.into_iter().flatten() {
            let _ = t.wait();
        }
        let _ = admission.take_latencies();
    }

    // phase A — writes quiesced: the serving stack's own concurrency cost
    let (quiesced_wall, quiesced_served, _) = run_concurrent(false);
    let qps_quiesced = quiesced_served as f64 / quiesced_wall;
    let _ = admission.take_latencies();

    // phase B — live writer: the same round under epoch churn; the
    // latency tails recorded in the JSON come from this round
    let (serve_wall, served, writer_publishes) = run_concurrent(true);
    let qps_sustained = served as f64 / serve_wall;

    let mut lat = admission.take_latencies();
    lat.sort_by(|x, y| x.total_cmp(y));
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx] * 1e3
    };
    let (p50_ms, p99_ms, p999_ms) = (pct(0.50), pct(0.99), pct(0.999));

    // correctness phase, writes quiesced: the sharded service (on its
    // latest epoch — same borrowed world) must answer equivalently to the
    // serial single-engine reference
    let mut results_equivalent = true;
    for (q, want) in typed.iter().zip(&serial) {
        let got = serving.execute(q).expect("sharded execute");
        if !serve_answers_equivalent(q, &got.answer, &want.answer) {
            results_equivalent = false;
            println!("DIVERGED: {:?}", q.kind());
        }
    }
    let totals = serving.reuse_totals();

    println!("{:<34} {:>12}", "metric", "value");
    println!("{:<34} {:>12.1}", "serial execute loop qps", serial_qps);
    println!("{:<34} {:>12.1}", "quiesced qps (4 clients)", qps_quiesced);
    println!(
        "{:<34} {:>12.1}",
        "sustained qps (4 clients + writer)", qps_sustained
    );
    println!(
        "{:<34} {:>11.2}x",
        "speedup vs serial",
        qps_sustained / serial_qps
    );
    println!("{:<34} {:>12.3}", "p50 latency (ms)", p50_ms);
    println!("{:<34} {:>12.3}", "p99 latency (ms)", p99_ms);
    println!("{:<34} {:>12.3}", "p99.9 latency (ms)", p999_ms);
    println!(
        "{:<34} {:>12}",
        "epochs published mid-run", writer_publishes
    );
    println!("{:<34} {:>12}", "coalesced batches", admission.batches());
    println!(
        "{:<34} {:>12}",
        "rejected (backpressure)",
        admission.rejected()
    );
    println!(
        "{:<34} {:>12}",
        "shard-certified answers", totals.shard_local
    );
    println!("{:<34} {:>12}", "full-scene fallbacks", totals.shard_merges);
    println!(
        "{:<34} {:>12}",
        "results equivalent (1e-6)", results_equivalent
    );
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "note: {cpus} CPU(s) visible — the concurrent/serial ratio is \
         cpu-bound; on one core it measures serving-stack overhead, not \
         parallel speedup"
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"queries\": {},\n  \"clients\": {},\n  \
         \"workers\": {},\n  \"writer_publishes\": {},\n  \
         \"qps_sustained\": {:.2},\n  \"qps_quiesced\": {:.2},\n  \
         \"serial_qps\": {:.2},\n  \
         \"speedup_vs_serial\": {:.4},\n  \"p50_ms\": {:.4},\n  \
         \"p99_ms\": {:.4},\n  \"p999_ms\": {:.4},\n  \"rejected\": {},\n  \
         \"coalesced_batches\": {},\n  \"shard_local\": {},\n  \
         \"shard_merges\": {},\n  \"results_equivalent\": {}\n}}\n",
        args.scale().0,
        n_queries,
        clients,
        workers,
        writer_publishes,
        qps_sustained,
        qps_quiesced,
        serial_qps,
        qps_sustained / serial_qps,
        p50_ms,
        p99_ms,
        p999_ms,
        admission.rejected(),
        admission.batches(),
        totals.shard_local,
        totals.shard_merges,
        results_equivalent,
    );
    let out = args.out("BENCH_serve.json");
    std::fs::write(&out, json).expect("write serve record");
    println!("recorded {out}");
}

/// The paper's §1 motivation: a naive CONN built from m snapshot ONN
/// queries vs one exact CONN query (same R-trees, same I/O accounting).
fn motivation(args: &Args) {
    use conn_core::{conn_search, naive_conn_by_onn};
    println!("\n## Motivation — naive m-point ONN sampling vs one exact CONN (UL, k = 1)");
    let scale = Scale(args.scale().0.min(1.0 / 64.0)); // the naive side is slow
    let w = Workload::with_ratio(
        Combo::Ul,
        scale,
        1.0,
        DEFAULT_QL,
        args.queries().min(5),
        args.seed,
    );
    let cfg = ConnConfig::default();
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9}",
        "strategy", "total(s)", "cpu(s)", "reads", "faults"
    );
    let mut exact = conn_core::QueryStats::default();
    for q in &w.queries {
        let (_, s) = conn_search(&w.data_tree, &w.obstacle_tree, q, &cfg);
        exact.accumulate(&s);
    }
    let e = exact.averaged(w.queries.len() as u64);
    println!(
        "{:<16} {:>10.3} {:>9.3} {:>9.1} {:>9.1}",
        "exact CONN", e.total_s, e.cpu_s, e.reads, e.faults
    );
    for m in [10usize, 50] {
        let mut naive = conn_core::QueryStats::default();
        for q in &w.queries {
            let (_, s) = naive_conn_by_onn(&w.data_tree, &w.obstacle_tree, q, m, 1, &cfg);
            naive.accumulate(&s);
        }
        let n = naive.averaged(w.queries.len() as u64);
        println!(
            "{:<16} {:>10.3} {:>9.3} {:>9.1} {:>9.1}",
            format!("naive m={m}"),
            n.total_s,
            n.cpu_s,
            n.reads,
            n.faults
        );
    }
    println!("(naive sampling is also *inexact between samples*; the exact");
    println!(" algorithm reports every split point — see paper §1/§2.2)");
}

/// Figure 9: performance vs query length (CL, k = 5).
fn fig9(args: &Args) {
    println!("\n## Figure 9 — COkNN vs query length ql (CL, k = 5)");
    print_header("ql (% side)");
    let cfg = ConnConfig::default();
    for ql_pct in [1.5, 3.0, 4.5, 6.0, 7.5] {
        let w = Workload::cl(args.scale(), ql_pct / 100.0, args.queries(), args.seed);
        let avg = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
        print_row(&format!("{ql_pct}"), &avg, w.full_vg_vertices());
    }
}

/// Figure 10: performance vs k (CL, ql = 4.5 %).
fn fig10(args: &Args) {
    println!("\n## Figure 10 — COkNN vs k (CL, ql = 4.5%)");
    print_header("k");
    let cfg = ConnConfig::default();
    let w = Workload::cl(args.scale(), DEFAULT_QL, args.queries(), args.seed);
    for k in [1usize, 3, 5, 7, 9] {
        let avg = w.run_two_tree(k, &cfg, 0.0, 0);
        print_row(&format!("{k}"), &avg, w.full_vg_vertices());
    }
}

/// Figure 11: performance vs |P|/|O| (UL and ZL, k = 5, ql = 4.5 %).
fn fig11(args: &Args) {
    let cfg = ConnConfig::default();
    for combo in [Combo::Ul, Combo::Zl] {
        println!(
            "\n## Figure 11 — COkNN vs |P|/|O| ({}, k = 5, ql = 4.5%)",
            combo.label()
        );
        print_header("|P|/|O|");
        for ratio in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let w = Workload::with_ratio(
                combo,
                args.scale(),
                ratio,
                DEFAULT_QL,
                args.queries(),
                args.seed,
            );
            let avg = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
            print_row(&format!("{ratio}"), &avg, w.full_vg_vertices());
        }
    }
}

/// Figure 12: performance vs LRU buffer size (CL and UL, k = 5, ql = 4.5 %).
fn fig12(args: &Args) {
    let cfg = ConnConfig::default();
    let warmup = args.queries() / 2; // paper: first 50 of 100 warm the buffer
    for combo in [Combo::Cl, Combo::Ul] {
        println!(
            "\n## Figure 12 — COkNN vs buffer size ({}, k = 5, ql = 4.5%)",
            combo.label()
        );
        print_header("buffer (%)");
        let w = match combo {
            Combo::Cl => Workload::cl(args.scale(), DEFAULT_QL, args.queries(), args.seed),
            _ => Workload::with_ratio(
                combo,
                args.scale(),
                1.0,
                DEFAULT_QL,
                args.queries(),
                args.seed,
            ),
        };
        for bs_pct in [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let avg = w.run_two_tree(DEFAULT_K, &cfg, bs_pct / 100.0, warmup);
            print_row(&format!("{bs_pct}"), &avg, w.full_vg_vertices());
        }
    }
}

/// Figure 13: one unified R-tree (1T) vs two R-trees (2T), across ql, k and
/// |P|/|O|.
fn fig13(args: &Args) {
    let cfg = ConnConfig::default();

    println!("\n## Figure 13(a,b) — 1T vs 2T across ql (CL and UL, k = 5)");
    for combo in [Combo::Cl, Combo::Ul] {
        println!("-- {} --", combo.label());
        println!(
            "{:<14} {:>12} {:>12}",
            "ql (% side)", "2T total(s)", "1T total(s)"
        );
        for ql_pct in [1.5, 3.0, 4.5, 6.0, 7.5] {
            let w = match combo {
                Combo::Cl => Workload::cl(args.scale(), ql_pct / 100.0, args.queries(), args.seed),
                _ => Workload::with_ratio(
                    combo,
                    args.scale(),
                    1.0,
                    ql_pct / 100.0,
                    args.queries(),
                    args.seed,
                ),
            };
            let two = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
            let one = w.run_one_tree(DEFAULT_K, &cfg, 0.0, 0);
            println!("{:<14} {:>12.3} {:>12.3}", ql_pct, two.total_s, one.total_s);
        }
    }

    println!("\n## Figure 13(c,d) — 1T vs 2T across k (CL and UL, ql = 4.5%)");
    for combo in [Combo::Cl, Combo::Ul] {
        println!("-- {} --", combo.label());
        println!("{:<14} {:>12} {:>12}", "k", "2T total(s)", "1T total(s)");
        let w = match combo {
            Combo::Cl => Workload::cl(args.scale(), DEFAULT_QL, args.queries(), args.seed),
            _ => Workload::with_ratio(
                combo,
                args.scale(),
                1.0,
                DEFAULT_QL,
                args.queries(),
                args.seed,
            ),
        };
        for k in [1usize, 3, 5, 7, 9] {
            let two = w.run_two_tree(k, &cfg, 0.0, 0);
            let one = w.run_one_tree(k, &cfg, 0.0, 0);
            println!("{:<14} {:>12.3} {:>12.3}", k, two.total_s, one.total_s);
        }
    }

    println!("\n## Figure 13(e,f) — 1T vs 2T across |P|/|O| (UL and ZL, k = 5, ql = 4.5%)");
    for combo in [Combo::Ul, Combo::Zl] {
        println!("-- {} --", combo.label());
        println!(
            "{:<14} {:>12} {:>12}",
            "|P|/|O|", "2T total(s)", "1T total(s)"
        );
        for ratio in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let w = Workload::with_ratio(
                combo,
                args.scale(),
                ratio,
                DEFAULT_QL,
                args.queries(),
                args.seed,
            );
            let two = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
            let one = w.run_one_tree(DEFAULT_K, &cfg, 0.0, 0);
            println!("{:<14} {:>12.3} {:>12.3}", ratio, two.total_s, one.total_s);
        }
    }
}

/// Ablation (DESIGN.md A1): pruning lemmas and the strict refinement loop.
fn ablation(args: &Args) {
    println!("\n## Ablation — pruning lemmas & strict mode (UL, k = 5, ql = 4.5%)");
    let w = Workload::with_ratio(
        Combo::Ul,
        args.scale(),
        1.0,
        DEFAULT_QL,
        args.queries(),
        args.seed,
    );
    print_header("config");
    let configs: [(&str, ConnConfig); 5] = [
        ("all-on", ConnConfig::default()),
        ("paper(literal)", ConnConfig::paper()),
        (
            "no-lemma1",
            ConnConfig {
                use_lemma1: false,
                ..ConnConfig::default()
            },
        ),
        (
            "no-lemma6",
            ConnConfig {
                use_lemma6: false,
                ..ConnConfig::default()
            },
        ),
        (
            "no-lemma7",
            ConnConfig {
                use_lemma7: false,
                ..ConnConfig::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let avg = w.run_two_tree(DEFAULT_K, &cfg, 0.0, 0);
        print_row(label, &avg, w.full_vg_vertices());
    }
}
