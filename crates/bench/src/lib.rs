//! Shared harness for the evaluation reproduction (paper §5).
//!
//! Builds the paper's dataset combinations (CL / UL / ZL) at a configurable
//! scale, runs query workloads, and averages the per-query metrics the
//! figures report. Both the Criterion benches and the `repro` binary sit on
//! top of this crate.

use conn_core::stats::AveragedStats;
use conn_core::{
    build_unified_tree, coknn_search, coknn_search_single_tree, conn_batch, conn_search,
    BatchStats, ConnConfig, ConnResult, DataPoint, QueryEngine, QueryStats, SpatialObject,
    Trajectory, TrajectoryResult,
};
use conn_datasets::{
    la_like, mixed_batch, query_segments, trajectory_routes, Combo, PAPER_CA_SIZE, PAPER_LA_SIZE,
};
use conn_geom::{Rect, Segment};
use conn_index::{RStarTree, DEFAULT_PAGE_SIZE};

/// Scale factor relative to the paper's dataset cardinalities
/// (|LA| = 131,461 obstacles, |CA| = 60,344 points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Tiny smoke-test scale (CI-friendly).
    pub const SMOKE: Scale = Scale(1.0 / 256.0);
    /// Default reproduction scale: 1/16 of the paper (≈ 8.2 k obstacles).
    pub const DEFAULT: Scale = Scale(1.0 / 16.0);
    /// The paper's full cardinalities.
    pub const PAPER: Scale = Scale(1.0);

    pub fn obstacles(&self) -> usize {
        ((PAPER_LA_SIZE as f64 * self.0) as usize).max(50)
    }

    pub fn ca_points(&self) -> usize {
        ((PAPER_CA_SIZE as f64 * self.0) as usize).max(25)
    }
}

/// A fully built experimental setting: trees + query workload.
pub struct Workload {
    pub combo: Combo,
    pub points: Vec<DataPoint>,
    pub obstacles: Vec<Rect>,
    pub data_tree: RStarTree<DataPoint>,
    pub obstacle_tree: RStarTree<Rect>,
    pub queries: Vec<Segment>,
}

impl Workload {
    /// Builds a workload: `n_points`/`n_obstacles` control cardinalities,
    /// `ql` the query length fraction, `n_queries` the workload size.
    pub fn build(
        combo: Combo,
        n_points: usize,
        n_obstacles: usize,
        ql: f64,
        n_queries: usize,
        seed: u64,
    ) -> Self {
        let obstacles = la_like(n_obstacles, seed);
        let raw = combo.points(n_points, seed.wrapping_add(1), &obstacles);
        let points = DataPoint::from_points(&raw);
        let queries = query_segments(n_queries, ql, seed.wrapping_add(2), &obstacles);
        let data_tree = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
        let obstacle_tree = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
        Workload {
            combo,
            points,
            obstacles,
            data_tree,
            obstacle_tree,
            queries,
        }
    }

    /// The paper's default CL setting at the given scale.
    pub fn cl(scale: Scale, ql: f64, n_queries: usize, seed: u64) -> Self {
        Self::build(
            Combo::Cl,
            scale.ca_points(),
            scale.obstacles(),
            ql,
            n_queries,
            seed,
        )
    }

    /// A batch-serving workload: same trees as [`Workload::build`], but the
    /// queries come from [`conn_datasets::mixed_batch`] (uniform +
    /// clustered + trajectory interleaved) — the scenario the batch
    /// front-end is measured on.
    pub fn build_mixed(
        combo: Combo,
        n_points: usize,
        n_obstacles: usize,
        ql: f64,
        n_queries: usize,
        seed: u64,
    ) -> Self {
        let mut w = Self::build(combo, n_points, n_obstacles, ql, n_queries, seed);
        w.queries = mixed_batch(n_queries, ql, seed.wrapping_add(2), &w.obstacles);
        w
    }

    /// UL / ZL with an explicit |P|/|O| ratio (Figure 11's x-axis).
    pub fn with_ratio(
        combo: Combo,
        scale: Scale,
        ratio: f64,
        ql: f64,
        n_queries: usize,
        seed: u64,
    ) -> Self {
        let n_obstacles = scale.obstacles();
        let n_points = ((n_obstacles as f64 * ratio) as usize).max(10);
        Self::build(combo, n_points, n_obstacles, ql, n_queries, seed)
    }

    /// The `FULL` line of Figures 9–12: vertices of the *global* visibility
    /// graph (4 per rectangular obstacle).
    pub fn full_vg_vertices(&self) -> u64 {
        4 * self.obstacles.len() as u64
    }

    /// Builds the unified tree for the 1T variant (built on demand — it
    /// duplicates the data).
    pub fn unified_tree(&self) -> RStarTree<SpatialObject> {
        build_unified_tree(&self.points, &self.obstacles, DEFAULT_PAGE_SIZE)
    }

    /// Runs the COkNN workload on the two-tree layout, averaging metrics.
    /// `buffer_frac` sizes the LRU buffer per tree (Figure 12); with a
    /// non-zero buffer the first `warmup` queries are excluded from the
    /// averages, as in the paper.
    pub fn run_two_tree(
        &self,
        k: usize,
        cfg: &ConnConfig,
        buffer_frac: f64,
        warmup: usize,
    ) -> AveragedStats {
        self.data_tree.set_buffer_frac(buffer_frac);
        self.obstacle_tree.set_buffer_frac(buffer_frac);
        self.data_tree.clear_buffer();
        self.obstacle_tree.clear_buffer();
        let mut acc = QueryStats::default();
        let mut counted = 0u64;
        for (i, q) in self.queries.iter().enumerate() {
            let (_, stats) = coknn_search(&self.data_tree, &self.obstacle_tree, q, k, cfg);
            if i >= warmup {
                acc.accumulate(&stats);
                counted += 1;
            }
        }
        self.data_tree.set_buffer_pages(0);
        self.obstacle_tree.set_buffer_pages(0);
        acc.averaged(counted)
    }

    /// Baseline for the batch comparison: loops the legacy one-shot CONN
    /// API over the workload (fresh substrate per query).
    pub fn run_conn_serial(&self, cfg: &ConnConfig) -> Vec<ConnResult> {
        self.queries
            .iter()
            .map(|q| conn_search(&self.data_tree, &self.obstacle_tree, q, cfg).0)
            .collect()
    }

    /// Single-threaded engine reuse: one [`QueryEngine`] answers the whole
    /// workload (isolates substrate amortization from parallelism).
    pub fn run_conn_engine(&self, cfg: &ConnConfig) -> (Vec<ConnResult>, QueryStats) {
        let mut engine = QueryEngine::new(*cfg);
        let mut pooled = QueryStats::default();
        let results = self
            .queries
            .iter()
            .map(|q| {
                let (res, stats) = engine.conn(&self.data_tree, &self.obstacle_tree, q);
                pooled.accumulate(&stats);
                res
            })
            .collect();
        (results, pooled)
    }

    /// The batch front-end over this workload's trees and queries.
    pub fn run_conn_batch(
        &self,
        cfg: &ConnConfig,
        threads: usize,
    ) -> (Vec<ConnResult>, BatchStats) {
        conn_batch(
            &self.data_tree,
            &self.obstacle_tree,
            &self.queries,
            cfg,
            threads,
        )
    }

    /// Polyline routes over this workload's obstacle field for the
    /// trajectory-session benchmark: `count` complete routes of `legs`
    /// obstacle-avoiding legs each.
    pub fn trajectories(&self, count: usize, legs: usize, ql: f64, seed: u64) -> Vec<Trajectory> {
        trajectory_routes(count, legs, ql, seed, &self.obstacles)
            .into_iter()
            .map(Trajectory::new)
            .collect()
    }

    /// Runs the COkNN workload on the single-tree layout.
    pub fn run_one_tree(
        &self,
        k: usize,
        cfg: &ConnConfig,
        buffer_frac: f64,
        warmup: usize,
    ) -> AveragedStats {
        let tree = self.unified_tree();
        tree.set_buffer_frac(buffer_frac);
        tree.clear_buffer();
        let mut acc = QueryStats::default();
        let mut counted = 0u64;
        for (i, q) in self.queries.iter().enumerate() {
            let (_, stats) = coknn_search_single_tree(&tree, q, k, cfg);
            if i >= warmup {
                acc.accumulate(&stats);
                counted += 1;
            }
        }
        acc.averaged(counted)
    }
}

/// Semantic CONN result equivalence with a value tolerance, compared by
/// sampling entry midpoints of both results plus an even grid — the gate
/// for comparisons **across kernel modes**, whose equal-length paths may
/// settle in different order and shift distances (hence split points) by a
/// few ULPs. Same-kernel comparisons should use the stricter
/// [`conn_results_identical`].
pub fn conn_results_equivalent(a: &[ConnResult], b: &[ConnResult]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.values_equivalent(y, 1e-6))
}

/// Bit-exact CONN result identity, entry by entry (answer ids + interval
/// bounds) — the equivalence gate the batch comparisons assert.
pub fn conn_results_identical(a: &[ConnResult], b: &[ConnResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.entries().len() == y.entries().len()
                && x.entries().iter().zip(y.entries()).all(|(ex, ey)| {
                    ex.point.map(|p| p.id) == ey.point.map(|p| p.id)
                        && ex.interval.lo.to_bits() == ey.interval.lo.to_bits()
                        && ex.interval.hi.to_bits() == ey.interval.hi.to_bits()
                })
        })
}

/// Tolerant trajectory-answer equivalence over the same trajectory: the
/// answer identity must match at every sampled parameter (tuple midpoints
/// of both results plus an even grid), except within 1e-6 of a split
/// point of either result — there the adjacent answers tie by continuity,
/// and which side of the boundary a sampled parameter falls on may differ
/// by the float drift between the session's and the cold run's loaded
/// obstacle supersets.
pub fn trajectory_results_equivalent(a: &TrajectoryResult, b: &TrajectoryResult) -> bool {
    let len = a.trajectory().len();
    let mut ts: Vec<f64> = a
        .segments()
        .iter()
        .chain(b.segments())
        .map(|(_, iv)| (iv.lo + iv.hi) * 0.5)
        .collect();
    ts.extend((0..=64).map(|i| len * i as f64 / 64.0));
    let near_boundary = |t: f64| {
        a.segments()
            .iter()
            .chain(b.segments())
            .any(|(_, iv)| (t - iv.lo).abs() < 1e-6 || (t - iv.hi).abs() < 1e-6)
    };
    ts.into_iter()
        .all(|t| a.nn_at(t).map(|p| p.id) == b.nn_at(t).map(|p| p.id) || near_boundary(t))
}

/// Pretty-prints one figure row.
pub fn print_row(label: &str, s: &AveragedStats, full_vg: u64) {
    println!(
        "{label:<14} {:>9.3} {:>8.3} {:>8.3} {:>8.1} {:>7.1} {:>8.1} {:>9.1} {:>9}",
        s.total_s, s.io_s, s.cpu_s, s.faults, s.npe, s.noe, s.svg_nodes, full_vg
    );
}

/// Prints the common table header.
pub fn print_header(param: &str) {
    println!(
        "{param:<14} {:>9} {:>8} {:>8} {:>8} {:>7} {:>8} {:>9} {:>9}",
        "total(s)", "io(s)", "cpu(s)", "faults", "NPE", "NOE", "|SVG|", "FULL"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_cardinalities() {
        assert_eq!(Scale::PAPER.obstacles(), PAPER_LA_SIZE);
        assert_eq!(Scale::PAPER.ca_points(), PAPER_CA_SIZE);
        assert!(Scale::SMOKE.obstacles() >= 50);
        assert!(Scale::DEFAULT.obstacles() > Scale::SMOKE.obstacles());
    }

    #[test]
    fn smoke_workload_runs_and_averages() {
        let w = Workload::build(Combo::Ul, 60, 120, 0.03, 3, 11);
        assert_eq!(w.queries.len(), 3);
        let avg = w.run_two_tree(2, &ConnConfig::default(), 0.0, 0);
        assert!(avg.npe >= 1.0);
        assert!(avg.total_s >= avg.cpu_s);
        assert_eq!(w.full_vg_vertices(), 480);
    }

    #[test]
    fn one_tree_runs_too() {
        let w = Workload::build(Combo::Zl, 40, 80, 0.03, 2, 13);
        let avg = w.run_one_tree(1, &ConnConfig::default(), 0.0, 0);
        assert!(avg.npe >= 1.0);
        assert!(avg.faults > 0.0);
    }

    #[test]
    fn buffer_reduces_faults() {
        let w = Workload::build(Combo::Ul, 100, 200, 0.04, 6, 17);
        let cold = w.run_two_tree(1, &ConnConfig::default(), 0.0, 3);
        let warm = w.run_two_tree(1, &ConnConfig::default(), 0.5, 3);
        assert!(
            warm.faults <= cold.faults,
            "{} vs {}",
            warm.faults,
            cold.faults
        );
        assert_eq!(warm.reads, cold.reads, "logical reads unaffected");
    }
}
