//! Figure 11 — COkNN cost vs the cardinality ratio |P|/|O| (UL and ZL).
//!
//! The paper's headline shape is a U: cost falls as the ratio grows from
//! 0.1 to ~0.5, then rises again toward 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_bench::{Scale, Workload};
use conn_core::{coknn_search, ConnConfig};
use conn_datasets::{Combo, DEFAULT_K, DEFAULT_QL};

fn bench(c: &mut Criterion) {
    let cfg = ConnConfig::default();
    for combo in [Combo::Ul, Combo::Zl] {
        let mut group = c.benchmark_group(format!("fig11_ratio_{}", combo.label()));
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(2));
        for ratio in [0.1f64, 0.5, 1.0, 5.0, 10.0] {
            let w = Workload::with_ratio(combo, Scale::SMOKE, ratio, DEFAULT_QL, 3, 2009);
            group.bench_with_input(BenchmarkId::from_parameter(ratio), &w, |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        let (res, _) =
                            coknn_search(&w.data_tree, &w.obstacle_tree, q, DEFAULT_K, &cfg);
                        let _ = black_box(res);
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
