//! Figure 12 — effect of the LRU buffer size (CL and UL).
//!
//! Criterion measures CPU-side wall time, which the paper shows to be
//! buffer-insensitive; the fault counts that *do* react are reported by
//! `repro fig12`. This bench pins the expectation that enabling the buffer
//! does not slow queries down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_bench::{Scale, Workload};
use conn_core::{coknn_search, ConnConfig};
use conn_datasets::{Combo, DEFAULT_K, DEFAULT_QL};

fn bench(c: &mut Criterion) {
    let cfg = ConnConfig::default();
    for combo in [Combo::Cl, Combo::Ul] {
        let mut group = c.benchmark_group(format!("fig12_buffer_{}", combo.label()));
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(2));
        let w = match combo {
            Combo::Cl => Workload::cl(Scale::SMOKE, DEFAULT_QL, 3, 2009),
            _ => Workload::with_ratio(combo, Scale::SMOKE, 1.0, DEFAULT_QL, 3, 2009),
        };
        for bs_pct in [0.0f64, 4.0, 32.0] {
            w.data_tree.set_buffer_frac(bs_pct / 100.0);
            w.obstacle_tree.set_buffer_frac(bs_pct / 100.0);
            group.bench_with_input(BenchmarkId::from_parameter(bs_pct), &w, |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        let (res, _) =
                            coknn_search(&w.data_tree, &w.obstacle_tree, q, DEFAULT_K, &cfg);
                        let _ = black_box(res);
                    }
                })
            });
        }
        w.data_tree.set_buffer_pages(0);
        w.obstacle_tree.set_buffer_pages(0);
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
