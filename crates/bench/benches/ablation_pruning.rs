//! Ablation benches (DESIGN.md A1/A2): what each pruning lemma buys, what
//! the strict refinement loop costs, and the local (IOR) visibility graph
//! vs the global one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_bench::{Scale, Workload};
use conn_core::baseline::sampled_conn;
use conn_core::{coknn_search, ConnConfig};
use conn_datasets::{Combo, DEFAULT_K, DEFAULT_QL};

fn bench_lemmas(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pruning");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    let w = Workload::with_ratio(Combo::Ul, Scale::SMOKE, 1.0, DEFAULT_QL, 3, 2009);
    let configs: [(&str, ConnConfig); 6] = [
        ("all-on", ConnConfig::default()),
        ("paper-literal", ConnConfig::paper()),
        (
            "no-lemma1",
            ConnConfig {
                use_lemma1: false,
                ..ConnConfig::default()
            },
        ),
        (
            "no-lemma6",
            ConnConfig {
                use_lemma6: false,
                ..ConnConfig::default()
            },
        ),
        (
            "no-lemma7",
            ConnConfig {
                use_lemma7: false,
                ..ConnConfig::default()
            },
        ),
        ("no-pruning", ConnConfig::no_pruning()),
    ];
    for (label, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                for q in &w.queries {
                    let (res, _) = coknn_search(&w.data_tree, &w.obstacle_tree, q, DEFAULT_K, cfg);
                    let _ = black_box(res);
                }
            })
        });
    }
    group.finish();
}

/// Local IOR-driven processing vs the naive global-graph sampling baseline
/// the paper argues against (§1, §2.4). Tiny scale: the baseline builds the
/// full visibility graph.
fn bench_local_vs_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_local_vg");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    let w = Workload::with_ratio(Combo::Ul, Scale(1.0 / 1024.0), 1.0, DEFAULT_QL, 2, 2009);
    let cfg = ConnConfig::default();
    group.bench_function("exact_local_conn", |b| {
        b.iter(|| {
            for q in &w.queries {
                let (res, _) = coknn_search(&w.data_tree, &w.obstacle_tree, q, 1, &cfg);
                let _ = black_box(res);
            }
        })
    });
    group.bench_function("sampled_global_50", |b| {
        b.iter(|| {
            for q in &w.queries {
                let samples = sampled_conn(&w.points, &w.obstacles, q, 50, 1);
                black_box(samples);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lemmas, bench_local_vs_global);
criterion_main!(benches);
