//! Microbenchmarks of the substrates (DESIGN.md S1–S3): R*-tree build and
//! query, visibility-graph Dijkstra, visible regions, and the split-point
//! solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_core::split::{crossing_params, split};
use conn_core::ControlPoint;
use conn_datasets::{la_like, uniform_points};
use conn_geom::{Interval, Point, Segment};
use conn_index::RStarTree;
use conn_vgraph::{visible_region, DijkstraEngine, NodeKind, VisGraph};

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_micro");
    group.sample_size(10);
    let pts = uniform_points(20_000, 7, &[]);
    group.bench_function("bulk_load_20k", |b| {
        b.iter(|| {
            let t = RStarTree::bulk_load(pts.clone(), 4096);
            black_box(t.num_pages())
        })
    });
    group.bench_function("insert_2k", |b| {
        b.iter(|| {
            let mut t = RStarTree::new(4096);
            for p in pts.iter().take(2000) {
                t.insert(*p);
            }
            black_box(t.num_pages())
        })
    });
    let tree = RStarTree::bulk_load(pts.clone(), 4096);
    let q = Segment::new(Point::new(100.0, 100.0), Point::new(600.0, 450.0));
    group.bench_function("knn_100_by_segment", |b| {
        b.iter(|| black_box(tree.knn(q, 100)))
    });
    group.finish();
}

fn bench_vgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("vgraph_micro");
    group.sample_size(10);
    for n_obstacles in [100usize, 400] {
        let obstacles = la_like(n_obstacles, 5);
        group.bench_with_input(
            BenchmarkId::new("dijkstra_endpoints", n_obstacles),
            &obstacles,
            |b, obstacles| {
                b.iter(|| {
                    let mut g = VisGraph::new(50.0);
                    let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
                    let t = g.add_point(Point::new(9999.0, 9999.0), NodeKind::Endpoint);
                    for r in obstacles {
                        g.add_obstacle(*r);
                    }
                    let mut d = DijkstraEngine::new(&g, s);
                    black_box(d.run_until_settled(&mut g, t))
                })
            },
        );
    }
    let obstacles = la_like(400, 5);
    let q = Segment::new(Point::new(2000.0, 5000.0), Point::new(2450.0, 5000.0));
    group.bench_function("visible_region_400", |b| {
        b.iter(|| black_box(visible_region(Point::new(2200.0, 5400.0), &q, &obstacles)))
    });
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_micro");
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(450.0, 0.0));
    let iv = Interval::new(0.0, 450.0);
    // a mix of all four paper cases
    let pairs: Vec<(ControlPoint, ControlPoint)> = (0..64)
        .map(|i| {
            let k = i as f64;
            (
                ControlPoint::new(Point::new(k * 7.0 % 450.0, 10.0 + k % 40.0), k % 13.0),
                ControlPoint::new(
                    Point::new(450.0 - k * 5.0 % 450.0, 25.0 + k % 30.0),
                    k % 7.0,
                ),
            )
        })
        .collect();
    group.bench_function("split_64_pairs", |b| {
        b.iter(|| {
            for (f, g) in &pairs {
                black_box(split(&q, f, g, iv));
            }
        })
    });
    group.bench_function("crossing_params_64_pairs", |b| {
        b.iter(|| {
            for (f, g) in &pairs {
                black_box(crossing_params(&q, f, g, &iv));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rtree, bench_vgraph, bench_split);
criterion_main!(benches);
