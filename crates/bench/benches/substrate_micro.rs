//! Microbenchmarks of the substrates (DESIGN.md S1–S3): R*-tree build and
//! query, visibility-graph Dijkstra, visible regions, the split-point
//! solver, and the arena/SoA sight-test and adjacency kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_core::split::{crossing_params, split};
use conn_core::ControlPoint;
use conn_datasets::{la_like, uniform_points};
use conn_geom::{batch, Interval, Point, Rect, RectLanes, Segment};
use conn_index::RStarTree;
use conn_vgraph::{visible_region, DijkstraEngine, NodeId, NodeKind, VisGraph};

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_micro");
    group.sample_size(10);
    let pts = uniform_points(20_000, 7, &[]);
    group.bench_function("bulk_load_20k", |b| {
        b.iter(|| {
            let t = RStarTree::bulk_load(pts.clone(), 4096);
            black_box(t.num_pages())
        })
    });
    group.bench_function("insert_2k", |b| {
        b.iter(|| {
            let mut t = RStarTree::new(4096);
            for p in pts.iter().take(2000) {
                t.insert(*p);
            }
            black_box(t.num_pages())
        })
    });
    let tree = RStarTree::bulk_load(pts.clone(), 4096);
    let q = Segment::new(Point::new(100.0, 100.0), Point::new(600.0, 450.0));
    group.bench_function("knn_100_by_segment", |b| {
        b.iter(|| black_box(tree.knn(q, 100)))
    });
    group.finish();
}

fn bench_vgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("vgraph_micro");
    group.sample_size(10);
    for n_obstacles in [100usize, 400] {
        let obstacles = la_like(n_obstacles, 5);
        group.bench_with_input(
            BenchmarkId::new("dijkstra_endpoints", n_obstacles),
            &obstacles,
            |b, obstacles| {
                b.iter(|| {
                    let mut g = VisGraph::new(50.0);
                    let s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
                    let t = g.add_point(Point::new(9999.0, 9999.0), NodeKind::Endpoint);
                    for r in obstacles {
                        g.add_obstacle(*r);
                    }
                    let mut d = DijkstraEngine::new(&g, s);
                    black_box(d.run_until_settled(&mut g, t))
                })
            },
        );
    }
    let obstacles = la_like(400, 5);
    let q = Segment::new(Point::new(2000.0, 5000.0), Point::new(2450.0, 5000.0));
    group.bench_function("visible_region_400", |b| {
        b.iter(|| black_box(visible_region(Point::new(2200.0, 5400.0), &q, &obstacles)))
    });
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_micro");
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(450.0, 0.0));
    let iv = Interval::new(0.0, 450.0);
    // a mix of all four paper cases
    let pairs: Vec<(ControlPoint, ControlPoint)> = (0..64)
        .map(|i| {
            let k = i as f64;
            (
                ControlPoint::new(Point::new(k * 7.0 % 450.0, 10.0 + k % 40.0), k % 13.0),
                ControlPoint::new(
                    Point::new(450.0 - k * 5.0 % 450.0, 25.0 + k % 30.0),
                    k % 7.0,
                ),
            )
        })
        .collect();
    group.bench_function("split_64_pairs", |b| {
        b.iter(|| {
            for (f, g) in &pairs {
                black_box(split(&q, f, g, iv));
            }
        })
    });
    group.bench_function("crossing_params_64_pairs", |b| {
        b.iter(|| {
            for (f, g) in &pairs {
                black_box(crossing_params(&q, f, g, &iv));
            }
        })
    });
    group.finish();
}

/// Splitmix-style hash → uniform f64 in [0, 1): deterministic candidate
/// fields without threading an RNG through the bench.
fn unit(seed: u64, i: u64) -> f64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// `n` small rects scattered uniformly over the 1000×1000 probe window.
fn uniform_rects(n: usize) -> Vec<Rect> {
    (0..n as u64)
        .map(|i| {
            let x = unit(1, i) * 950.0;
            let y = unit(2, i) * 950.0;
            let w = 5.0 + unit(3, i) * 30.0;
            let h = 5.0 + unit(4, i) * 30.0;
            Rect::new(x, y, x + w, y + h)
        })
        .collect()
}

/// `n` rects packed into four tight clusters (the LA-like access pattern:
/// most candidates share a neighborhood, many near-duplicates).
fn clustered_rects(n: usize) -> Vec<Rect> {
    let centers = [
        (200.0, 300.0),
        (700.0, 250.0),
        (450.0, 800.0),
        (850.0, 700.0),
    ];
    (0..n as u64)
        .map(|i| {
            let (cx, cy) = centers[(i % 4) as usize];
            let x = cx + (unit(5, i) - 0.5) * 120.0;
            let y = cy + (unit(6, i) - 0.5) * 120.0;
            let w = 4.0 + unit(7, i) * 20.0;
            let h = 4.0 + unit(8, i) * 20.0;
            Rect::new(x, y, x + w, y + h)
        })
        .collect()
}

/// Scalar per-rect sight tests vs the batched SoA lane kernel, on the
/// candidate-set sizes the grid actually hands the kernel (sparse cells,
/// typical windows, worst-case dense windows).
fn bench_sight(c: &mut Criterion) {
    let mut group = c.benchmark_group("sight_micro");
    let s = Segment::new(Point::new(10.0, 20.0), Point::new(980.0, 940.0));
    for (label, make) in [
        ("uniform", uniform_rects as fn(usize) -> Vec<Rect>),
        ("clustered", clustered_rects as fn(usize) -> Vec<Rect>),
    ] {
        for n in [4usize, 32, 256] {
            let rects = make(n);
            let lanes = RectLanes::from_rects(&rects);
            let ids: Vec<u32> = (0..n as u32).collect();
            group.bench_function(BenchmarkId::new(format!("scalar_{label}"), n), |b| {
                b.iter(|| black_box(rects.iter().filter(|r| r.blocks(black_box(&s))).count()))
            });
            let mut verdicts = Vec::with_capacity(n);
            group.bench_function(BenchmarkId::new(format!("batched_{label}"), n), |b| {
                b.iter(|| {
                    batch::blocks_each(black_box(&s), &lanes, &ids, &mut verdicts);
                    black_box(verdicts.iter().filter(|&&v| v).count())
                })
            });
        }
    }
    group.finish();
}

/// The three ways an adjacency-cache build can derive one pivot's candidate
/// visibility: per-candidate grid walks (`blocks`, the pre-sweep production
/// path), per-candidate batched SoA probes over the window's rect ids
/// (`blocks_among`), and the rotational plane-sweep (`sweep_visibility`,
/// one angular pass over rects + candidates). All three return identical
/// verdicts; this group locates the candidate-count crossover that
/// `conn_vgraph::sweep::AUTO_MIN_CANDIDATES` encodes — below it the sweep's
/// event sort costs more than the walks it saves.
fn bench_sweep(c: &mut Criterion) {
    use conn_vgraph::ObstacleGrid;
    let mut group = c.benchmark_group("sweep_micro");
    group.sample_size(20);
    let n_rects = 192usize;
    for (label, make) in [
        ("uniform", uniform_rects as fn(usize) -> Vec<Rect>),
        ("clustered", clustered_rects as fn(usize) -> Vec<Rect>),
    ] {
        let rects = make(n_rects);
        let mut grid = ObstacleGrid::new(50.0);
        let ids: Vec<u32> = rects.iter().map(|r| grid.insert(*r)).collect();
        let pivot = Point::new(500.0, 500.0);
        for k in [8usize, 64, 512] {
            let cands: Vec<Point> = (0..k as u64)
                .map(|i| Point::new(unit(11, i) * 1000.0, unit(12, i) * 1000.0))
                .collect();
            group.bench_function(BenchmarkId::new(format!("walk_{label}"), k), |b| {
                b.iter(|| {
                    black_box(
                        cands
                            .iter()
                            .filter(|c| grid.blocks(black_box(pivot), **c))
                            .count(),
                    )
                })
            });
            group.bench_function(BenchmarkId::new(format!("batched_{label}"), k), |b| {
                b.iter(|| {
                    black_box(
                        cands
                            .iter()
                            .filter(|c| grid.blocks_among(black_box(pivot), **c, &ids))
                            .count(),
                    )
                })
            });
            let mut vis = Vec::with_capacity(k);
            group.bench_function(BenchmarkId::new(format!("sweep_{label}"), k), |b| {
                b.iter(|| {
                    grid.sweep_visibility(black_box(pivot), &cands, &ids, &mut vis);
                    black_box(vis.iter().filter(|&&v| v).count())
                })
            });
        }
    }
    group.finish();
}

/// CSR adjacency arena vs the legacy per-node `Vec<(u32, f64)>` layout:
/// the same warm edge lists, consumed the way the Dijkstra settle loop
/// consumes them (scan every neighbor, fold the weights).
fn bench_neighbors(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjacency_micro");
    group.sample_size(20);
    let obstacles = la_like(200, 5);
    let mut g = VisGraph::new(50.0);
    g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
    g.add_point(Point::new(9999.0, 9999.0), NodeKind::Endpoint);
    for r in &obstacles {
        g.add_obstacle(*r);
    }
    let n = g.num_nodes();
    // warm every base cache once, and snapshot the legacy layout from it
    let legacy: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|u| g.neighbors(NodeId(u as u32)).to_vec())
        .collect();
    group.bench_function(BenchmarkId::new("csr_neighbors", n), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for u in 0..n {
                for &(_, w) in g.neighbors(NodeId(u as u32)) {
                    acc += w;
                }
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("legacy_neighbors", n), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for adj in &legacy {
                for &(_, w) in adj {
                    acc += w;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rtree,
    bench_vgraph,
    bench_split,
    bench_sight,
    bench_sweep,
    bench_neighbors
);
criterion_main!(benches);
