//! Figure 13 — single unified R-tree (1T) vs two separate R-trees (2T).
//!
//! The paper finds 1T at least as fast as 2T in most settings (one tree
//! traversal instead of two, co-located points and obstacles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_bench::{Scale, Workload};
use conn_core::{coknn_search, coknn_search_single_tree, ConnConfig};
use conn_datasets::{Combo, DEFAULT_K, DEFAULT_QL};

fn bench(c: &mut Criterion) {
    let cfg = ConnConfig::default();
    for combo in [Combo::Cl, Combo::Ul] {
        let mut group = c.benchmark_group(format!("fig13_layout_{}", combo.label()));
        group
            .sample_size(10)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(2));
        let w = match combo {
            Combo::Cl => Workload::cl(Scale::SMOKE, DEFAULT_QL, 3, 2009),
            _ => Workload::with_ratio(combo, Scale::SMOKE, 1.0, DEFAULT_QL, 3, 2009),
        };
        let unified = w.unified_tree();
        group.bench_with_input(BenchmarkId::new("2T", combo.label()), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    let (res, _) = coknn_search(&w.data_tree, &w.obstacle_tree, q, DEFAULT_K, &cfg);
                    let _ = black_box(res);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("1T", combo.label()), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    let (res, _) = coknn_search_single_tree(&unified, q, DEFAULT_K, &cfg);
                    let _ = black_box(res);
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
