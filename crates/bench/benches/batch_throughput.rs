//! Batch-layer throughput: the legacy one-shot API looped over a 64-query
//! mixed workload vs a single reused `QueryEngine` vs the parallel
//! `conn_batch` front-end. All three produce identical results (asserted
//! before timing); the deltas isolate substrate amortization
//! (serial engine) and the worker pool (batch).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use conn_bench::{conn_results_identical, Workload};
use conn_core::ConnConfig;
use conn_datasets::Combo;

const BATCH: usize = 64;

fn bench_batch_throughput(c: &mut Criterion) {
    let cfg = ConnConfig::default();
    let w = Workload::build_mixed(Combo::Ul, 2000, 2000, 0.045, BATCH, 2009);

    // correctness gate: all three execution paths agree bit-for-bit
    let serial = w.run_conn_serial(&cfg);
    let (engine, _) = w.run_conn_engine(&cfg);
    let (batch, _) = w.run_conn_batch(&cfg, 0);
    assert!(
        conn_results_identical(&serial, &engine),
        "engine path diverged"
    );
    assert!(
        conn_results_identical(&serial, &batch),
        "batch path diverged"
    );

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    group.bench_function("serial_one_shot_64q", |b| {
        b.iter(|| black_box(w.run_conn_serial(&cfg).len()))
    });
    group.bench_function("serial_engine_reuse_64q", |b| {
        b.iter(|| black_box(w.run_conn_engine(&cfg).0.len()))
    });
    group.bench_function("parallel_batch_64q", |b| {
        b.iter(|| black_box(w.run_conn_batch(&cfg, 0).0.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
