//! Figure 9 — COkNN cost vs query length `ql` (CL combination, k = 5).
//!
//! The paper reports total time, NPE, NOE and |SVG| growing with `ql`.
//! Criterion measures the wall-clock query cost here; the full metric table
//! is produced by `repro fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_bench::{Scale, Workload};
use conn_core::{coknn_search, ConnConfig};
use conn_datasets::DEFAULT_K;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_query_length");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    let cfg = ConnConfig::default();
    for ql_pct in [1.5f64, 3.0, 4.5, 6.0, 7.5] {
        let w = Workload::cl(Scale::SMOKE, ql_pct / 100.0, 3, 2009);
        group.bench_with_input(BenchmarkId::from_parameter(ql_pct), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    let (res, _) = coknn_search(&w.data_tree, &w.obstacle_tree, q, DEFAULT_K, &cfg);
                    let _ = black_box(res);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
