//! Kernel microbench: blind Dijkstra vs goal-directed A* vs continued-label
//! search, across uniform and clustered obstacle layouts and densities.
//!
//! Each mode runs the IOR + CPLC access pattern of the CONN loop — a search
//! until the target settles, then a second traversal of the same source —
//! which is exactly where the goal-directed kernel (smaller expansion) and
//! label continuation (the second traversal replays the first) earn their
//! keep. `repro --target conn` measures the same effect end-to-end;
//! `BENCH_conn.json` records it per PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_datasets::la_like;
use conn_geom::{Point, Rect};
use conn_vgraph::{DijkstraEngine, Goal, NodeId, NodeKind, VisGraph};

/// Uniform street field (the LA-like generator as-is).
fn uniform_obstacles(n: usize) -> Vec<Rect> {
    la_like(n, 42)
}

/// Clustered field: keep the street rectangles nearest to a few cluster
/// centers, so the search corridor alternates dense and open regions.
fn clustered_obstacles(n: usize) -> Vec<Rect> {
    let centers = [
        Point::new(2500.0, 2500.0),
        Point::new(7500.0, 3000.0),
        Point::new(5000.0, 7500.0),
    ];
    let mut pool = la_like(4 * n, 43);
    pool.sort_by(|a, b| {
        let da = centers
            .iter()
            .map(|c| c.dist(a.center()))
            .fold(f64::INFINITY, f64::min);
        let db = centers
            .iter()
            .map(|c| c.dist(b.center()))
            .fold(f64::INFINITY, f64::min);
        da.total_cmp(&db)
    });
    pool.truncate(n);
    pool
}

/// Builds the search scene: source and target on opposite sides of the
/// field, with every obstacle loaded (the odist setting).
fn scene(obstacles: &[Rect]) -> (VisGraph, NodeId, NodeId, Point) {
    let mut g = VisGraph::new(120.0);
    let src = g.add_point(Point::new(500.0, 500.0), NodeKind::Endpoint);
    let tpos = Point::new(9000.0, 8500.0);
    let dst = g.add_point(tpos, NodeKind::Endpoint);
    for r in obstacles {
        g.add_obstacle(*r);
    }
    (g, src, dst, tpos)
}

/// One IOR + CPLC-shaped workload: settle the target, then traverse the
/// same source again up to the target's distance.
fn run_mode(g: &mut VisGraph, src: NodeId, dst: NodeId, goal: Goal, continued: bool) -> f64 {
    let mut dij = DijkstraEngine::default();
    dij.prepare_directed(g, src, goal);
    let d = dij.run_until_settled(g, dst);
    // second traversal of the same search (CPLC after IOR)
    if continued {
        dij.ensure_prepared(g, src, goal, true); // replays the prefix
    } else {
        dij.prepare_directed(g, src, goal); // pre-PR: cold restart
    }
    dij.set_bound(d);
    dij.run_all(g);
    d
}

type LayoutGen = fn(usize) -> Vec<Rect>;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("odist_kernel");
    group.sample_size(10);
    let layouts: [(&str, LayoutGen); 2] = [
        ("uniform", uniform_obstacles),
        ("clustered", clustered_obstacles),
    ];
    for (layout, make) in layouts {
        for n in [200usize, 800] {
            let obstacles = make(n);
            let modes: [(&str, Goal, bool); 3] = [
                ("blind", Goal::None, false),
                ("astar", Goal::Point(Point::new(9000.0, 8500.0)), false),
                ("continued", Goal::Point(Point::new(9000.0, 8500.0)), true),
            ];
            for (mode, goal, continued) in modes {
                group.bench_with_input(
                    BenchmarkId::new(format!("{layout}_{mode}"), n),
                    &obstacles,
                    |b, obstacles| {
                        b.iter(|| {
                            let (mut g, src, dst, _tpos) = scene(obstacles);
                            black_box(run_mode(&mut g, src, dst, goal, continued))
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
