//! Figure 10 — COkNN cost vs k (CL combination, ql = 4.5 %).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use conn_bench::{Scale, Workload};
use conn_core::{coknn_search, ConnConfig};
use conn_datasets::DEFAULT_QL;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_k");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    let cfg = ConnConfig::default();
    let w = Workload::cl(Scale::SMOKE, DEFAULT_QL, 3, 2009);
    for k in [1usize, 3, 5, 7, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                for q in &w.queries {
                    let (res, _) = coknn_search(&w.data_tree, &w.obstacle_tree, q, k, &cfg);
                    let _ = black_box(res);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
