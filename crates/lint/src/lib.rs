//! `conn-lint` — domain-specific static analysis for the conn workspace.
//!
//! The workspace's kernels carry invariants the compiler cannot see:
//! distances must be ordered totally (NaN-safe), query paths must not
//! panic, kernels must stay deterministic (no wall clock, no ad-hoc
//! threads), the public API must be documented, and feature gates must
//! refer to declared features. This crate walks every workspace `.rs`
//! file with a small hand-rolled lexer ([`lexer`]) and enforces those
//! rules ([`rules`]) with `file:line` diagnostics.
//!
//! Suppression is explicit and greppable:
//!
//! * `// lint:allow(<rule>)` on the same or preceding line;
//! * `// lint:allow-file(<rule>): <justification>` for a whole file —
//!   the justification is mandatory;
//! * facets narrow a rule: `lint:allow(no-panic-in-query-path[index])`
//!   allows indexing but keeps unwrap/expect/panic enforcement.
//!
//! Run it as `cargo run -p conn-lint` (exit 0 = clean, 1 = violations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod manifest;
pub mod rules;

pub use rules::{Diagnostic, RuleInfo, RULES};

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into during the workspace walk.
///
/// `vendor/` holds API stand-ins for third-party crates (the build
/// environment is offline) — foreign code is not held to domain rules.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Lints every `.rs` file under `root` and returns the surviving
/// diagnostics, sorted by path then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut feature_cache: HashMap<PathBuf, HashSet<String>> = HashMap::new();
    let empty = HashSet::new();
    let mut diags = Vec::new();

    for file in &files {
        let src = fs::read_to_string(file)?;
        let rel = rel_path(root, file);
        let features: &HashSet<String> = match manifest::owning_crate_dir(root, file) {
            Some(dir) => {
                if !feature_cache.contains_key(&dir) {
                    let feats = manifest::crate_features(&dir)?;
                    feature_cache.insert(dir.clone(), feats);
                }
                &feature_cache[&dir]
            }
            None => &empty,
        };
        let lexed = lexer::lex(&src);
        let ctx = rules::FileContext::new(&rel, &lexed, features);
        diags.extend(rules::apply_allows(&ctx, rules::run_all(&ctx)));
    }

    diags.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(diags)
}

/// Formats one diagnostic the way the binary prints it.
pub fn render(d: &Diagnostic) -> String {
    format!("{}:{}: [{}] {}", d.path, d.line, d.code, d.message)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose Cargo.toml contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
