//! A small hand-rolled Rust lexer.
//!
//! The lint pass needs token-level structure, not a full parse tree: rule
//! patterns are short token subsequences (`Instant :: now`, `. unwrap (`,
//! an identifier followed by `[`). The lexer therefore recognizes exactly
//! the lexical classes that matter for that — identifiers, lifetimes,
//! string/char/numeric literals, doc comments, punctuation — and records
//! the line number of every token so diagnostics can point at source.
//!
//! Ordinary (non-doc) comments do not become tokens, but they are scanned
//! for `lint:allow(...)` / `lint:allow-file(...)` suppression markers,
//! which are returned alongside the token stream.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Instant`, …).
    Ident,
    /// String literal (normal, raw, or byte); `text` holds the contents.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    Doc,
    /// Punctuation; `::` is fused into a single token, everything else is
    /// one character.
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (for [`TokKind::Str`], the unescaped-ish contents —
    /// escapes are kept verbatim, which is fine for name matching).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// A `lint:allow` suppression marker found in a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment appears on.
    pub line: u32,
    /// Rule name being allowed, optionally with a `[facet]` suffix.
    pub target: String,
    /// True for `lint:allow-file(...)` (whole-file scope).
    pub file_scope: bool,
    /// True when a `: justification` trails the closing paren.
    pub justified: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Every suppression marker found in comments.
    pub allows: Vec<Allow>,
}

/// Lexes `src`, returning the token stream plus any `lint:allow` markers.
///
/// The lexer is intentionally forgiving: malformed input never panics, it
/// just degrades into punctuation tokens. Lint rules only ever *miss* on
/// garbage input (which rustc will reject anyway), they don't crash.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comments: doc comments become tokens, ordinary comments are
        // scanned for lint:allow markers.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let mut j = i;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            if (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!") {
                out.tokens.push(Token {
                    kind: TokKind::Doc,
                    text,
                    line,
                });
            } else {
                parse_allow(&text, line, &mut out.allows);
            }
            i = j;
            continue;
        }

        // Block comments (nested, as in Rust).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let is_doc = i + 2 < n
                && (chars[i + 2] == '!'
                    || (chars[i + 2] == '*' && !(i + 3 < n && chars[i + 3] == '/')));
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut body = String::new();
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    body.push(chars[j]);
                    j += 1;
                }
            }
            if is_doc {
                out.tokens.push(Token {
                    kind: TokKind::Doc,
                    text: body,
                    line: start_line,
                });
            } else {
                parse_allow(&body, start_line, &mut out.allows);
            }
            i = j;
            continue;
        }

        // Identifiers, keywords, and the string-prefix forms r"", b"",
        // br"", r#"", r#ident.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let ident: String = chars[start..j].iter().collect();
            if (ident == "r" || ident == "b" || ident == "br") && j < n {
                if chars[j] == '"' {
                    let (end, content, nl) = scan_plain_or_raw_string(&chars, j, ident != "b");
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: content,
                        line,
                    });
                    line += nl;
                    i = end;
                    continue;
                }
                if chars[j] == '#' && ident != "b" {
                    // Raw string r#"…"# (any hash count) or raw ident r#type.
                    let mut h = j;
                    while h < n && chars[h] == '#' {
                        h += 1;
                    }
                    if h < n && chars[h] == '"' {
                        let hashes = h - j;
                        let (end, content, nl) = scan_raw_string(&chars, h + 1, hashes);
                        out.tokens.push(Token {
                            kind: TokKind::Str,
                            text: content,
                            line,
                        });
                        line += nl;
                        i = end;
                        continue;
                    }
                    if ident == "r"
                        && h == j + 1
                        && h < n
                        && (chars[h].is_alphabetic() || chars[h] == '_')
                    {
                        let mut k = h;
                        while k < n && (chars[k].is_alphanumeric() || chars[k] == '_') {
                            k += 1;
                        }
                        let raw: String = chars[h..k].iter().collect();
                        out.tokens.push(Token {
                            kind: TokKind::Ident,
                            text: raw,
                            line,
                        });
                        i = k;
                        continue;
                    }
                }
                if ident == "b" && chars[j] == '\'' {
                    let (end, nl) = scan_char_literal(&chars, j);
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    line += nl;
                    i = end;
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            i = j;
            continue;
        }

        // Plain strings.
        if c == '"' {
            let (end, content, nl) = scan_plain_or_raw_string(&chars, i, false);
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: content,
                line,
            });
            line += nl;
            i = end;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(_) => after == Some('\''),
                None => false,
            };
            if is_char {
                let (end, nl) = scan_char_literal(&chars, i);
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line += nl;
                i = end;
            } else {
                // Lifetime: ' followed by an identifier, no closing quote.
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let name: String = chars[i + 1..j].iter().collect();
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: name,
                    line,
                });
                i = j;
            }
            continue;
        }

        // Numbers (we only need "a literal happened here", not its value).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n {
                let d = chars[j];
                let continues = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && j + 1 < n && chars[j + 1].is_ascii_digit())
                    || ((d == '+' || d == '-') && j > start && matches!(chars[j - 1], 'e' | 'E'));
                if continues {
                    j += 1;
                } else {
                    break;
                }
            }
            let text: String = chars[start..j].iter().collect();
            out.tokens.push(Token {
                kind: TokKind::Num,
                text,
                line,
            });
            i = j;
            continue;
        }

        // Punctuation; fuse `::` since path patterns need it.
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: "::".into(),
                line,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Scans a quoted string starting at the opening `"` (index `open`).
/// Returns (index past closing quote, contents, newlines crossed).
/// With `raw`, backslash is not an escape (r"" / br"" zero-hash form).
fn scan_plain_or_raw_string(chars: &[char], open: usize, raw: bool) -> (usize, String, u32) {
    let n = chars.len();
    let mut j = open + 1;
    let mut content = String::new();
    let mut nl = 0u32;
    while j < n {
        let c = chars[j];
        if c == '"' {
            return (j + 1, content, nl);
        }
        if c == '\\' && !raw && j + 1 < n {
            content.push(c);
            content.push(chars[j + 1]);
            if chars[j + 1] == '\n' {
                nl += 1;
            }
            j += 2;
            continue;
        }
        if c == '\n' {
            nl += 1;
        }
        content.push(c);
        j += 1;
    }
    (n, content, nl)
}

/// Scans a raw string body (past `r##"`), looking for `"` + `hashes` hashes.
fn scan_raw_string(chars: &[char], body: usize, hashes: usize) -> (usize, String, u32) {
    let n = chars.len();
    let mut j = body;
    let mut content = String::new();
    let mut nl = 0u32;
    while j < n {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while k < n && chars[k] == '#' && h < hashes {
                k += 1;
                h += 1;
            }
            if h == hashes {
                return (k, content, nl);
            }
        }
        if chars[j] == '\n' {
            nl += 1;
        }
        content.push(chars[j]);
        j += 1;
    }
    (n, content, nl)
}

/// Scans a char/byte-char literal starting at the opening `'`.
fn scan_char_literal(chars: &[char], open: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = open + 1;
    let mut nl = 0u32;
    if j < n && chars[j] == '\\' {
        // Skip the escaped char, then run to the closing quote (covers
        // \u{…} and friends).
        j += 2;
        while j < n && chars[j] != '\'' {
            if chars[j] == '\n' {
                nl += 1;
            }
            j += 1;
        }
        return (j.min(n - 1) + 1, nl);
    }
    if j < n {
        if chars[j] == '\n' {
            nl += 1;
        }
        j += 1; // the char itself
    }
    if j < n && chars[j] == '\'' {
        j += 1;
    }
    (j, nl)
}

/// Parses `lint:allow(rule, rule2)` / `lint:allow-file(rule): why` markers
/// out of a comment's text.
fn parse_allow(text: &str, line: u32, allows: &mut Vec<Allow>) {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow") {
        rest = &rest[pos + "lint:allow".len()..];
        let file_scope = if let Some(r) = rest.strip_prefix("-file") {
            rest = r;
            true
        } else {
            false
        };
        let Some(r) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = r.find(')') else { continue };
        let targets = &r[..close];
        let after = &r[close + 1..];
        let justified = after
            .trim_start()
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        for t in targets.split(',') {
            let t = t.trim();
            if !t.is_empty() {
                allows.push(Allow {
                    line,
                    target: t.to_string(),
                    file_scope,
                    justified,
                });
            }
        }
        rest = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("fn main() {\n    x.unwrap();\n}\n");
        let idents: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(
            idents,
            vec![("fn", 1), ("main", 1), ("x", 2), ("unwrap", 2)]
        );
    }

    #[test]
    fn double_colon_is_fused() {
        let l = lex("Instant::now()");
        assert!(l.tokens[1].is_punct("::"));
        assert!(l.tokens[2].is_ident("now"));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let l = lex(r#"let s = "x.unwrap() [0]"; let c = '['; let r = r"[1]";"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_punct("[")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
    }

    #[test]
    fn escaped_quote_char_literal() {
        let l = lex(r"let q = '\''; let lt: &'static str = x;");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn raw_hash_string_and_raw_ident() {
        let l = lex(r###"let a = r#"has "quotes" and [0]"#; let b = r#type;"###);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("quotes")));
        assert!(l.tokens.iter().any(|t| t.is_ident("type")));
        assert!(!l.tokens.iter().any(|t| t.is_punct("[")));
    }

    #[test]
    fn doc_comments_are_tokens_plain_comments_are_not() {
        let l = lex("/// doc\n// plain\n//! inner\nfn f() {}\n");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Doc).count(),
            2
        );
    }

    #[test]
    fn allow_markers() {
        let l = lex("// lint:allow(no-panic-in-query-path)\n\
             x.unwrap(); // lint:allow(a, b)\n\
             // lint:allow-file(no-panic-in-query-path[index]): dense arrays\n");
        assert_eq!(l.allows.len(), 4);
        assert_eq!(l.allows[0].line, 1);
        assert!(!l.allows[0].file_scope);
        assert_eq!(l.allows[1].target, "a");
        assert_eq!(l.allows[2].target, "b");
        assert_eq!(l.allows[1].line, 2);
        let f = &l.allows[3];
        assert!(f.file_scope && f.justified);
        assert_eq!(f.target, "no-panic-in-query-path[index]");
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn float_literals_single_token() {
        let l = lex("let x = 1.5e-3 + 0x1f; let r = 0..10;");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0x1f", "0", "10"]);
    }
}
