//! The rule catalog.
//!
//! Each rule is a function over one lexed file plus its workspace context.
//! Rules emit [`Diagnostic`]s; suppression via `lint:allow` comments is
//! applied centrally by [`apply_allows`], so rules stay oblivious to it.

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::HashSet;

/// One lint finding, pointing at a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule code, optionally with a `[facet]` suffix
    /// (e.g. `no-panic-in-query-path[index]`).
    pub code: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and the README.
pub struct RuleInfo {
    /// Rule code as used in diagnostics and `lint:allow(...)`.
    pub name: &'static str,
    /// One-line summary of what it enforces and where.
    pub summary: &'static str,
}

/// The full catalog, in evaluation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-naked-float-cmp",
        summary: "raw partial_cmp on distances is forbidden outside conn_geom::approx — \
                  route orderings through OrdF64 (total order); the PartialOrd-delegates-\
                  to-Ord idiom `Some(self.cmp(other))` is recognized and allowed",
    },
    RuleInfo {
        name: "no-panic-in-query-path",
        summary: "unwrap/expect (facets [unwrap]/[expect]), panic!-family macros \
                  ([panic]) and slice indexing ([index]) are forbidden in non-test code \
                  of crates/{core,vgraph,index} — route failures through conn::Error",
    },
    RuleInfo {
        name: "no-thread-spawn-outside-pool",
        summary: "std::thread::spawn is only allowed in crates/core/src/pool.rs (the \
                  worker-engine pool) and crates/bench (serving-harness clients) — \
                  everything else must go through the pool",
    },
    RuleInfo {
        name: "no-interior-mutability-in-service",
        summary: "in the serving layer (core::{service,epoch,admission}) the cell family \
                  (RefCell/Cell/OnceCell/UnsafeCell, facet [cell]) is banned — use epoch \
                  snapshots / OnceLock; locks (Mutex/RwLock, facet [lock]) need a \
                  lint:allow justification naming the bounded critical section",
    },
    RuleInfo {
        name: "no-wallclock-in-kernels",
        summary: "Instant::now / SystemTime::now are only allowed in crates/bench and \
                  crates/core/src/stats.rs — kernels must stay deterministic and \
                  timing-free",
    },
    RuleInfo {
        name: "pub-api-documented",
        summary: "every plain `pub fn` in the facade (src/lib.rs) and in \
                  core::{query,service} must carry a doc comment",
    },
    RuleInfo {
        name: "feature-gate-hygiene",
        summary: "every cfg(feature = \"…\") name must be declared in the owning \
                  crate's Cargo.toml [features] table",
    },
    RuleInfo {
        name: "no-full-rebuild-in-delta-path",
        summary: "cold-build entry points (bulk_load, prepare_directed, VisGraph::new, \
                  Scene::new) are banned in crates/core/src/live.rs — the delta path must \
                  repair resident substrates in place and derive epochs by structural \
                  sharing; construction-time cold builds need an inline lint:allow \
                  justification",
    },
    RuleInfo {
        name: "lint-allow-hygiene",
        summary: "file-scoped allows (`lint:allow-file(rule): why`) must carry a \
                  non-empty justification after the closing paren",
    },
];

/// Everything a rule needs to know about one source file.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// Lexed token stream + allow markers.
    pub lexed: &'a Lexed,
    /// Per-token flag: token is inside `#[cfg(test)]` / `#[test]` code.
    pub test_mask: Vec<bool>,
    /// Whole file is test/bench/example scaffolding (`tests/`, `benches/`,
    /// `examples/` directories).
    pub file_is_test: bool,
    /// `[features]` names declared by the owning crate's Cargo.toml.
    pub declared_features: &'a HashSet<String>,
}

impl<'a> FileContext<'a> {
    /// Builds the context, computing the test mask from the token stream.
    pub fn new(
        rel_path: &'a str,
        lexed: &'a Lexed,
        declared_features: &'a HashSet<String>,
    ) -> Self {
        let file_is_test = ["tests/", "benches/", "examples/"]
            .iter()
            .any(|d| rel_path.contains(&format!("/{d}")) || rel_path.starts_with(d));
        let test_mask = compute_test_mask(&lexed.tokens);
        FileContext {
            rel_path,
            lexed,
            test_mask,
            file_is_test,
            declared_features,
        }
    }

    fn toks(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// True when token `i` sits in test code (file-level or `cfg(test)`).
    fn in_test(&self, i: usize) -> bool {
        self.file_is_test || self.test_mask.get(i).copied().unwrap_or(false)
    }

    fn diag(&self, out: &mut Vec<Diagnostic>, line: u32, code: &str, message: &str) {
        out.push(Diagnostic {
            path: self.rel_path.to_string(),
            line,
            code: code.to_string(),
            message: message.to_string(),
        });
    }
}

/// Marks every token covered by a `#[cfg(test)]` or `#[test]` item.
///
/// Strategy: when such an attribute is seen, the following item (after any
/// further attributes and doc comments) is masked up to either its matching
/// close brace or a top-level `;`.
fn compute_test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let close = match matching(toks, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            if attr_marks_test(&toks[i + 2..close]) {
                let end = item_end(toks, close + 1);
                for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Does `#[ … ]` content mark a test item? Covers `test`, `cfg(test)`,
/// `cfg(all(test, …))`, `bench`, `cfg(any(test, …))`.
fn attr_marks_test(inner: &[Token]) -> bool {
    let first_is_carrier = inner
        .first()
        .map(|t| t.is_ident("test") || t.is_ident("cfg") || t.is_ident("bench"))
        .unwrap_or(false);
    first_is_carrier
        && inner
            .iter()
            .any(|t| t.is_ident("test") || t.is_ident("bench"))
}

/// Index one past the end of the item starting at `start` (skipping leading
/// attributes/docs): past the matching `}` of its body, or past a top-level
/// `;` for braceless items.
fn item_end(toks: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes and doc comments before the item keyword.
    loop {
        if i < toks.len() && toks[i].kind == TokKind::Doc {
            i += 1;
            continue;
        }
        if i + 1 < toks.len() && toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
            match matching(toks, i + 1, "[", "]") {
                Some(c) => {
                    i = c + 1;
                    continue;
                }
                None => return toks.len(),
            }
        }
        break;
    }
    let mut depth_paren = 0i32;
    let mut depth_brack = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth_paren += 1,
                ")" => depth_paren -= 1,
                "[" => depth_brack += 1,
                "]" => depth_brack -= 1,
                "{" if depth_paren == 0 && depth_brack == 0 => {
                    return matching(toks, i, "{", "}")
                        .map(|c| c + 1)
                        .unwrap_or(toks.len());
                }
                ";" if depth_paren == 0 && depth_brack == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// Index of the punct matching `open` at position `at` (which must hold an
/// `open` punct), honoring nesting.
fn matching(toks: &[Token], at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    no_naked_float_cmp(ctx, &mut out);
    no_panic_in_query_path(ctx, &mut out);
    no_thread_spawn_outside_pool(ctx, &mut out);
    no_interior_mutability_in_service(ctx, &mut out);
    no_wallclock_in_kernels(ctx, &mut out);
    pub_api_documented(ctx, &mut out);
    feature_gate_hygiene(ctx, &mut out);
    no_full_rebuild_in_delta_path(ctx, &mut out);
    out
}

/// Filters diagnostics through the file's `lint:allow` markers and emits
/// `lint-allow-hygiene` findings for unjustified file-scope allows.
pub fn apply_allows(ctx: &FileContext<'_>, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !ctx.lexed.allows.iter().any(|a| {
                let target_hits = a.target == d.code
                    || d.code
                        .split_once('[')
                        .map(|(base, _)| a.target == base)
                        .unwrap_or(false);
                let scope_hits = if a.file_scope {
                    a.justified
                } else {
                    a.line == d.line || a.line + 1 == d.line
                };
                target_hits && scope_hits
            })
        })
        .collect();
    for a in &ctx.lexed.allows {
        if a.file_scope && !a.justified {
            ctx.diag(
                &mut out,
                a.line,
                "lint-allow-hygiene",
                "lint:allow-file(...) must carry a justification: \
                 `// lint:allow-file(rule): <why this whole file is exempt>`",
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 1: no-naked-float-cmp
// ---------------------------------------------------------------------------

fn no_naked_float_cmp(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    // The total-order shim itself is the one place allowed to touch
    // partial_cmp directly.
    if ctx.rel_path == "crates/geom/src/approx.rs" {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("partial_cmp") || ctx.in_test(i) {
            continue;
        }
        // Blessed idiom: `fn partial_cmp(…) -> … { Some(self.cmp(other)) }`,
        // the standard PartialOrd-delegates-to-Ord impl.
        if i > 0 && toks[i - 1].is_ident("fn") && delegates_to_ord(toks, i) {
            continue;
        }
        ctx.diag(
            out,
            t.line,
            "no-naked-float-cmp",
            "raw partial_cmp — on distance values this silently drops NaN ordering; \
             wrap operands in conn_geom::OrdF64 (total order) instead",
        );
    }
}

/// Looks ahead from a `partial_cmp` definition for the exact body
/// `{ Some ( self . cmp ( other ) ) }`.
fn delegates_to_ord(toks: &[Token], def: usize) -> bool {
    let body_open = toks
        .iter()
        .enumerate()
        .skip(def)
        .find(|(_, t)| t.is_punct("{"))
        .map(|(j, _)| j);
    let Some(b) = body_open else { return false };
    let want: &[(&str, TokKind)] = &[
        ("Some", TokKind::Ident),
        ("(", TokKind::Punct),
        ("self", TokKind::Ident),
        (".", TokKind::Punct),
        ("cmp", TokKind::Ident),
        ("(", TokKind::Punct),
        ("other", TokKind::Ident),
        (")", TokKind::Punct),
        (")", TokKind::Punct),
        ("}", TokKind::Punct),
    ];
    toks.len() > b + want.len()
        && want
            .iter()
            .enumerate()
            .all(|(k, (txt, kind))| toks[b + 1 + k].kind == *kind && toks[b + 1 + k].text == *txt)
}

// ---------------------------------------------------------------------------
// Rule 2: no-panic-in-query-path
// ---------------------------------------------------------------------------

const QUERY_PATH_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/vgraph/src/",
    "crates/index/src/",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn no_panic_in_query_path(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !QUERY_PATH_PREFIXES
        .iter()
        .any(|p| ctx.rel_path.starts_with(p))
    {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        // .unwrap( / .expect(   — method calls only, not unwrap_or etc.
        // (idents compare whole, so unwrap_or is a different token).
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            ctx.diag(
                out,
                t.line,
                &format!("no-panic-in-query-path[{}]", t.text),
                &format!(
                    ".{}() can panic mid-query — return conn::Error, or annotate \
                     `// lint:allow(no-panic-in-query-path)` with an infallibility proof",
                    t.text
                ),
            );
            continue;
        }
        // panic!-family macros.
        if PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
        {
            ctx.diag(
                out,
                t.line,
                "no-panic-in-query-path[panic]",
                &format!(
                    "{}! aborts the query — return conn::Error instead (or annotate with \
                     an infallibility justification)",
                    t.text
                ),
            );
            continue;
        }
        // Indexing: `expr[` where expr ends in an identifier, `)` or `]`.
        if t.is_punct("[") && i > 0 {
            let p = &toks[i - 1];
            let indexes_expr = (p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text))
                || p.is_punct(")")
                || p.is_punct("]");
            if indexes_expr {
                ctx.diag(
                    out,
                    t.line,
                    "no-panic-in-query-path[index]",
                    "slice/array indexing panics on out-of-bounds — use .get()/.get_mut(), \
                     or file-allow the [index] facet with a bounds-invariant justification",
                );
            }
        }
    }
}

/// Keywords that can directly precede `[` without forming an indexing
/// expression (`return [a, b]`, `match x { _ => [0] }`, …).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "while"
            | "loop"
            | "move"
            | "as"
            | "let"
            | "mut"
            | "ref"
            | "for"
            | "box"
            | "yield"
    )
}

// ---------------------------------------------------------------------------
// Rule 3: no-thread-spawn-outside-pool
// ---------------------------------------------------------------------------

fn no_thread_spawn_outside_pool(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    // pool.rs is the worker pool; the bench crate spawns serving-harness
    // client/pump/writer threads by design.
    if ctx.rel_path == "crates/core/src/pool.rs" || ctx.rel_path.starts_with("crates/bench/") {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("spawn")
            && !ctx.in_test(i)
            && i > 0
            && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct("."))
            && toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            ctx.diag(
                out,
                t.line,
                "no-thread-spawn-outside-pool",
                "threads are only created by the worker-engine pool \
                 (crates/core/src/pool.rs) — route parallel work through conn_batch / \
                 ConnService::execute_batch",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-interior-mutability-in-service
// ---------------------------------------------------------------------------

/// Files making up the serving layer, where `ConnService: Send + Sync` is a
/// contract: interior mutability either breaks the bound (cells) or needs an
/// explicit justification (locks).
const SERVICE_LAYER_FILES: &[&str] = &[
    "crates/core/src/service.rs",
    "crates/core/src/epoch.rs",
    "crates/core/src/admission.rs",
];

const CELL_TYPES: &[&str] = &["RefCell", "Cell", "OnceCell", "UnsafeCell"];
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

fn no_interior_mutability_in_service(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !SERVICE_LAYER_FILES.contains(&ctx.rel_path) {
        return;
    }
    let toks = ctx.toks();
    // `use …;` items only name the types — flagging them would force allows
    // on imports, which say nothing about how the type is held.
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("use") {
            in_use = true;
        } else if t.is_punct(";") {
            in_use = false;
        }
        if in_use || ctx.in_test(i) {
            continue;
        }
        if CELL_TYPES.iter().any(|c| t.is_ident(c)) {
            ctx.diag(
                out,
                t.line,
                "no-interior-mutability-in-service[cell]",
                &format!(
                    "{} in the serving layer defeats ConnService: Send + Sync — publish \
                     immutable epoch snapshots instead (OnceLock for lazy init); the cell \
                     family is banned here",
                    t.text
                ),
            );
        } else if LOCK_TYPES.iter().any(|c| t.is_ident(c)) {
            ctx.diag(
                out,
                t.line,
                "no-interior-mutability-in-service[lock]",
                &format!(
                    "{} in the serving layer must be justified — annotate \
                     `// lint:allow(no-interior-mutability-in-service)` naming the bounded \
                     critical section it guards",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: no-wallclock-in-kernels
// ---------------------------------------------------------------------------

fn no_wallclock_in_kernels(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel_path.starts_with("crates/bench/") || ctx.rel_path == "crates/core/src/stats.rs" {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && !ctx.in_test(i)
            && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_ident("now")).unwrap_or(false)
        {
            ctx.diag(
                out,
                t.line,
                "no-wallclock-in-kernels",
                &format!(
                    "{}::now() in kernel code breaks determinism and replay — measure in \
                     the bench/stats layer, or annotate a boundary-only measurement",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: pub-api-documented
// ---------------------------------------------------------------------------

const DOCUMENTED_FILES: &[&str] = &[
    "src/lib.rs",
    "crates/core/src/query.rs",
    "crates/core/src/service.rs",
];

fn pub_api_documented(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !DOCUMENTED_FILES.contains(&ctx.rel_path) {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || ctx.in_test(i) {
            continue;
        }
        // Restricted visibility (pub(crate) etc.) is not public API.
        if toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false) {
            continue;
        }
        // `pub [const|async|unsafe|extern "…"]* fn`
        let mut j = i + 1;
        let mut is_fn = false;
        while j < toks.len() && j <= i + 5 {
            match &toks[j] {
                x if x.is_ident("fn") => {
                    is_fn = true;
                    break;
                }
                x if x.is_ident("const")
                    || x.is_ident("async")
                    || x.is_ident("unsafe")
                    || x.is_ident("extern")
                    || x.kind == TokKind::Str =>
                {
                    j += 1;
                }
                _ => break,
            }
        }
        if !is_fn {
            continue;
        }
        if !has_doc_before(toks, i) {
            let name = toks
                .get(j + 1)
                .map(|n| n.text.clone())
                .unwrap_or_else(|| "?".to_string());
            ctx.diag(
                out,
                t.line,
                "pub-api-documented",
                &format!("pub fn {name} has no doc comment — this file is public API surface"),
            );
        }
    }
}

/// Walks backwards from the `pub` token across stacked attributes looking
/// for a doc comment (or a `#[doc…]` attribute).
fn has_doc_before(toks: &[Token], mut i: usize) -> bool {
    while i > 0 {
        let prev = &toks[i - 1];
        if prev.kind == TokKind::Doc {
            return true;
        }
        if prev.is_punct("]") {
            // Skip back over one attribute `#[ … ]`.
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct("]") {
                    depth += 1;
                } else if toks[j].is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            if toks.get(j + 1).map(|t| t.is_ident("doc")).unwrap_or(false) {
                return true;
            }
            if j == 0 || !toks[j - 1].is_punct("#") {
                return false;
            }
            i = j - 1;
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 6: feature-gate-hygiene
// ---------------------------------------------------------------------------

fn feature_gate_hygiene(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("cfg") || t.is_ident("cfg_attr")) {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.is_punct("(")) else {
            continue;
        };
        let _ = open;
        let Some(close) = matching(toks, i + 1, "(", ")") else {
            continue;
        };
        let mut j = i + 2;
        while j + 2 <= close {
            if toks[j].is_ident("feature")
                && toks[j + 1].is_punct("=")
                && toks[j + 2].kind == TokKind::Str
            {
                let name = &toks[j + 2].text;
                if !ctx.declared_features.contains(name) {
                    ctx.diag(
                        out,
                        toks[j + 2].line,
                        "feature-gate-hygiene",
                        &format!(
                            "cfg(feature = \"{name}\") — feature is not declared in the \
                             owning crate's Cargo.toml [features] table; typo or missing \
                             declaration"
                        ),
                    );
                }
                j += 3;
            } else {
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-full-rebuild-in-delta-path
// ---------------------------------------------------------------------------

/// Cold-build method calls the live delta path must never reach for.
const COLD_BUILD_CALLS: &[&str] = &["bulk_load", "prepare_directed"];
/// Substrate types whose `::new` constructor is a from-scratch cold build.
const COLD_BUILD_CTORS: &[&str] = &["VisGraph", "Scene"];

fn no_full_rebuild_in_delta_path(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    // The live-scene module's whole contract is surgical repair: its delta
    // path may only mutate resident trees/graphs and derive epochs by
    // structural sharing. Cold builds are construction-time only, and each
    // must say so in an inline allow.
    if ctx.rel_path != "crates/core/src/live.rs" {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        // `….bulk_load(` / `….prepare_directed(` — method or path calls.
        if COLD_BUILD_CALLS.iter().any(|c| t.is_ident(c))
            && i > 0
            && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct("."))
            && toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            ctx.diag(
                out,
                t.line,
                "no-full-rebuild-in-delta-path",
                &format!(
                    "{}() rebuilds a substrate from scratch — the live delta path must \
                     repair the resident tree/graph in place; a construction-time cold \
                     build needs an inline `lint:allow` justification",
                    t.text
                ),
            );
            continue;
        }
        // `VisGraph::new(` / `Scene::new(` — cold constructors (Scene::shared
        // and Scene::from_trees stay legal: they share, they don't rebuild).
        if COLD_BUILD_CTORS.iter().any(|c| t.is_ident(c))
            && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_ident("new")).unwrap_or(false)
            && toks.get(i + 3).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            ctx.diag(
                out,
                t.line,
                "no-full-rebuild-in-delta-path",
                &format!(
                    "{}::new(…) builds a cold substrate — the live delta path must derive \
                     epochs by structural sharing and in-place repair; a construction-time \
                     cold build needs an inline `lint:allow` justification",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_diags(rel_path: &str, src: &str, feats: &[&str]) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let features: HashSet<String> = feats.iter().map(|s| s.to_string()).collect();
        let ctx = FileContext::new(rel_path, &lexed, &features);
        apply_allows(&ctx, run_all(&ctx))
    }

    #[test]
    fn unwrap_flagged_in_core_not_elsewhere() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = ctx_diags("crates/core/src/conn.rs", src, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "no-panic-in-query-path[unwrap]");
        assert_eq!(d[0].line, 1);
        assert!(ctx_diags("crates/datasets/src/points.rs", src, &[]).is_empty());
    }

    #[test]
    fn unwrap_or_and_tests_are_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(ctx_diags("crates/core/src/conn.rs", src, &[]).is_empty());
    }

    #[test]
    fn indexing_facet_and_file_allow() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
        let d = ctx_diags("crates/vgraph/src/dijkstra.rs", src, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "no-panic-in-query-path[index]");
        let allowed =
            format!("// lint:allow-file(no-panic-in-query-path[index]): bounds proven\n{src}");
        assert!(ctx_diags("crates/vgraph/src/dijkstra.rs", &allowed, &[]).is_empty());
    }

    #[test]
    fn array_literals_and_attrs_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u32; 2] { [1, 2] }\n\
                   fn g(x: bool) -> Vec<[u8; 2]> { if x { vec![[0, 0]] } else { vec![] } }\n";
        assert!(ctx_diags("crates/core/src/conn.rs", src, &[]).is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { unreachable!(\"no\") }\n";
        let d = ctx_diags("crates/index/src/tree.rs", src, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "no-panic-in-query-path[panic]");
    }

    #[test]
    fn line_allow_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(no-panic-in-query-path)\n\
                   x.unwrap()\n}\n";
        assert!(ctx_diags("crates/core/src/conn.rs", src, &[]).is_empty());
    }

    #[test]
    fn partial_cmp_flagged_unless_delegating() {
        let naked = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }\n";
        let d = ctx_diags("crates/core/src/joins.rs", naked, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "no-naked-float-cmp");

        let blessed = "impl PartialOrd for X {\n\
                       fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n\
                       Some(self.cmp(other)) }\n}\n";
        assert!(ctx_diags("crates/core/src/joins.rs", blessed, &[]).is_empty());
        // approx.rs itself is exempt.
        assert!(ctx_diags("crates/geom/src/approx.rs", naked, &[]).is_empty());
    }

    #[test]
    fn wallclock_and_spawn() {
        let src = "fn f() { let t = Instant::now(); std::thread::spawn(|| {}); }\n";
        let d = ctx_diags("crates/core/src/conn.rs", src, &[]);
        let codes: Vec<_> = d.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"no-wallclock-in-kernels"));
        assert!(codes.contains(&"no-thread-spawn-outside-pool"));
        // The pool file and the bench crate are exempt.
        assert!(ctx_diags(
            "crates/core/src/pool.rs",
            "fn f() { std::thread::spawn(|| {}); }",
            &[]
        )
        .is_empty());
        assert!(ctx_diags(
            "crates/bench/src/bin/repro.rs",
            "fn f() { Instant::now(); std::thread::spawn(|| {}); }",
            &[]
        )
        .is_empty());
        // batch.rs is no longer the pool: a spawn there is flagged again.
        let d = ctx_diags(
            "crates/core/src/batch.rs",
            "fn f() { std::thread::spawn(|| {}); }",
            &[],
        );
        assert!(d.iter().any(|d| d.code == "no-thread-spawn-outside-pool"));
    }

    #[test]
    fn interior_mutability_rule_covers_serving_files() {
        // cells are banned outright…
        let cell = "struct S { x: RefCell<u32> }\n";
        let d = ctx_diags("crates/core/src/service.rs", cell, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "no-interior-mutability-in-service[cell]");
        // …imports alone are not flagged…
        assert!(ctx_diags("crates/core/src/epoch.rs", "use std::cell::RefCell;\n", &[]).is_empty());
        // …locks need a justification…
        let lock = "struct S { m: Mutex<u32> }\n";
        let d = ctx_diags("crates/core/src/admission.rs", lock, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "no-interior-mutability-in-service[lock]");
        let justified = "struct S {\n\
                         // lint:allow(no-interior-mutability-in-service)\n\
                         m: Mutex<u32>,\n}\n";
        assert!(ctx_diags("crates/core/src/admission.rs", justified, &[]).is_empty());
        // …and the rule only covers the serving layer.
        assert!(ctx_diags("crates/core/src/pool.rs", lock, &[]).is_empty());
        assert!(ctx_diags("crates/core/src/conn.rs", cell, &[]).is_empty());
    }

    #[test]
    fn pub_fn_doc_required_only_in_api_files() {
        let src = "pub fn naked() {}\n/// documented\npub fn fine() {}\n\
                   pub(crate) fn internal() {}\n";
        let d = ctx_diags("crates/core/src/query.rs", src, &[]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("naked"));
        assert!(ctx_diags("crates/core/src/conn.rs", src, &[]).is_empty());
    }

    #[test]
    fn feature_gate_checked_against_manifest() {
        let src = "#[cfg(feature = \"sanitize-invariants\")]\nfn a() {}\n\
                   #[cfg(all(test, feature = \"nope\"))]\nfn b() {}\n";
        let d = ctx_diags("crates/geom/src/sanitize.rs", src, &["sanitize-invariants"]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("nope"));
    }

    #[test]
    fn full_rebuild_flagged_only_in_live_module() {
        let src = "fn f() { let t = RStarTree::bulk_load(items, 4096); \
                   let g = VisGraph::new(cell); }\n";
        let d = ctx_diags("crates/core/src/live.rs", src, &[]);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.code == "no-full-rebuild-in-delta-path"));
        // Other files may cold-build freely.
        assert!(ctx_diags("crates/core/src/service.rs", src, &[]).is_empty());
        // Structural sharing is the blessed idiom, not a rebuild.
        let shared = "fn f() { let s = Scene::shared(data, obstacles); }\n";
        assert!(ctx_diags("crates/core/src/live.rs", shared, &[]).is_empty());
        // Construction-time cold builds carry an inline justification.
        let justified = "fn build() {\n\
                         let g = VisGraph::new(cell); // lint:allow(no-full-rebuild-in-delta-path): construction-time\n\
                         g.prepare();\n}\n";
        assert!(ctx_diags("crates/core/src/live.rs", justified, &[]).is_empty());
        // Test code is exempt (cold rebuilds are the oracle there).
        let test_src = "#[cfg(test)]\nmod tests {\n  fn g() { \
                        let s = Scene::new(points, obstacles); }\n}\n";
        assert!(ctx_diags("crates/core/src/live.rs", test_src, &[]).is_empty());
    }

    #[test]
    fn unjustified_file_allow_is_itself_flagged() {
        let src = "// lint:allow-file(no-panic-in-query-path)\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = ctx_diags("crates/core/src/conn.rs", src, &[]);
        let codes: Vec<_> = d.iter().map(|d| d.code.as_str()).collect();
        // The allow is rejected (no justification) so the unwrap still fires,
        // plus the hygiene finding.
        assert!(codes.contains(&"lint-allow-hygiene"));
        assert!(codes.contains(&"no-panic-in-query-path[unwrap]"));
    }
}
