//! CLI entry point: `cargo run -p conn-lint [--list-rules] [ROOT]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for rule in conn_lint::RULES {
                    println!("{}\n    {}\n", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "conn-lint — domain-specific static analysis for the conn workspace\n\n\
                     usage: conn-lint [--list-rules] [ROOT]\n\n\
                     ROOT defaults to the enclosing cargo workspace. Exit 0 = clean,\n\
                     1 = violations (printed as path:line: [rule] message), 2 = error."
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("conn-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("conn-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match conn_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("conn-lint: no enclosing cargo workspace found; pass ROOT");
                    return ExitCode::from(2);
                }
            }
        }
    };

    match conn_lint::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("conn-lint: clean ({} rules)", conn_lint::RULES.len());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{}", conn_lint::render(d));
            }
            println!("conn-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("conn-lint: {e}");
            ExitCode::from(2)
        }
    }
}
