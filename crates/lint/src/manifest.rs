//! Minimal Cargo.toml reading — just enough to answer "which feature names
//! does this crate declare?" for the feature-gate-hygiene rule.
//!
//! This is deliberately not a TOML parser: it recognizes section headers
//! and `name = …` keys line-wise, which matches how every manifest in this
//! workspace (and virtually all hand-written manifests) is laid out.

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Reads the `[features]` table of `crate_dir/Cargo.toml` and returns the
/// declared feature names. Optional dependencies also create implicit
/// features, so `optional = true` dependency names are included too.
pub fn crate_features(crate_dir: &Path) -> io::Result<HashSet<String>> {
    let text = fs::read_to_string(crate_dir.join("Cargo.toml"))?;
    let mut feats = HashSet::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let declares_feature = section == "[features]"
            || (section.starts_with("[dependencies")
                && value.contains("optional")
                && value.contains("true"));
        if declares_feature {
            feats.insert(key.to_string());
        }
    }
    Ok(feats)
}

/// Walks up from `file` to the nearest directory containing a Cargo.toml,
/// stopping at (and including) `root`.
pub fn owning_crate_dir(root: &Path, file: &Path) -> Option<PathBuf> {
    let mut dir = file.parent()?;
    loop {
        if dir.join("Cargo.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        if dir == root {
            return None;
        }
        dir = dir.parent()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_manifests() {
        // Run against this crate's own manifest: no features declared.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"));
        let feats = crate_features(dir).expect("read own manifest");
        assert!(feats.is_empty());

        // And the geom crate, which declares sanitize-invariants.
        let geom = dir.parent().expect("crates/").join("geom");
        let feats = crate_features(&geom).expect("read geom manifest");
        assert!(feats.contains("sanitize-invariants"), "got {feats:?}");
    }
}
