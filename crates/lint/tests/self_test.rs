//! Self-test required by the acceptance criteria: the lint binary must
//! exit non-zero with `file:line` diagnostics on a seeded violation
//! fixture, and exit 0 on the real workspace tree.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Builds a throwaway mini-workspace whose single crate sits at
/// `crates/core` so the path-scoped rules apply, seeded with one violation
/// of every rule at a known line.
fn write_fixture(dir: &Path) {
    fs::create_dir_all(dir.join("crates/core/src")).expect("mkdir fixture");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/core\"]\n",
    )
    .expect("write root manifest");
    fs::write(
        dir.join("crates/core/Cargo.toml"),
        "[package]\nname = \"fixture-core\"\nversion = \"0.0.0\"\nedition = \"2021\"\n\
         \n[features]\ndeclared = []\n",
    )
    .expect("write crate manifest");
    // Line numbers below are asserted on — keep them stable.
    let src = "\
fn naked(x: Option<u32>) -> u32 { x.unwrap() }                          // line 1
fn cmp(a: f64, b: f64) { let _ = a.partial_cmp(&b); }                   // line 2
fn idx(v: &[u32]) -> u32 { v[0] }                                       // line 3
fn clock() { let _ = std::time::Instant::now(); }                       // line 4
fn threads() { std::thread::spawn(|| {}); }                             // line 5
#[cfg(feature = \"undeclared\")]
fn gated() {}
fn boom() { panic!(\"no\") }
fn ok(x: Option<u32>) -> u32 { x.unwrap_or(0) }
#[cfg(feature = \"declared\")]
fn fine() {}
";
    fs::write(dir.join("crates/core/src/lib.rs"), src).expect("write fixture source");
}

fn fixture_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("conn-lint-selftest-{}-{tag}", std::process::id()))
}

#[test]
fn binary_flags_seeded_fixture_with_file_line_diagnostics() {
    let dir = fixture_dir("seeded");
    let _ = fs::remove_dir_all(&dir);
    write_fixture(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_conn-lint"))
        .arg(&dir)
        .output()
        .expect("run conn-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert!(
        !out.status.success(),
        "lint must exit non-zero on the fixture; stdout:\n{stdout}"
    );
    for expected in [
        "crates/core/src/lib.rs:1: [no-panic-in-query-path[unwrap]]",
        "crates/core/src/lib.rs:2: [no-naked-float-cmp]",
        "crates/core/src/lib.rs:3: [no-panic-in-query-path[index]]",
        "crates/core/src/lib.rs:4: [no-wallclock-in-kernels]",
        "crates/core/src/lib.rs:5: [no-thread-spawn-outside-pool]",
        "crates/core/src/lib.rs:6: [feature-gate-hygiene]",
        "crates/core/src/lib.rs:8: [no-panic-in-query-path[panic]]",
    ] {
        assert!(
            stdout.contains(expected),
            "missing `{expected}` in:\n{stdout}"
        );
    }
    // The compliant lines must stay silent.
    assert!(
        !stdout.contains("lib.rs:9:"),
        "unwrap_or wrongly flagged:\n{stdout}"
    );
    assert!(
        !stdout.contains("lib.rs:10:"),
        "declared feature wrongly flagged:\n{stdout}"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn allows_suppress_and_unjustified_file_allow_is_flagged() {
    let dir = fixture_dir("allows");
    let _ = fs::remove_dir_all(&dir);
    write_fixture(&dir);
    let src = "\
// lint:allow-file(no-panic-in-query-path[index]): fixture-wide exemption test
fn idx(v: &[u32]) -> u32 { v[0] }
// lint:allow(no-panic-in-query-path)
fn naked(x: Option<u32>) -> u32 { x.unwrap() }
// lint:allow-file(no-naked-float-cmp)
fn cmp(a: f64, b: f64) { let _ = a.partial_cmp(&b); }
";
    fs::write(dir.join("crates/core/src/lib.rs"), src).expect("overwrite fixture source");

    let out = Command::new(env!("CARGO_BIN_EXE_conn-lint"))
        .arg(&dir)
        .output()
        .expect("run conn-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert!(!stdout.contains("[index]"), "file allow failed:\n{stdout}");
    assert!(!stdout.contains("[unwrap]"), "line allow failed:\n{stdout}");
    // The justification-less allow-file is rejected: hygiene finding plus
    // the float-cmp violation it failed to suppress.
    assert!(
        stdout.contains("[lint-allow-hygiene]"),
        "no hygiene finding:\n{stdout}"
    );
    assert!(
        stdout.contains("[no-naked-float-cmp]"),
        "bad allow suppressed:\n{stdout}"
    );
    assert!(!out.status.success());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let diags = conn_lint::lint_workspace(root).expect("lint workspace");
    let rendered: Vec<String> = diags.iter().map(conn_lint::render).collect();
    assert!(
        diags.is_empty(),
        "workspace must be lint-clean, found {}:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
