//! Quickstart: the smallest useful CONN query, through the typed front
//! door — a [`Scene`] owns the indexed world, a [`ConnService`] executes
//! validated [`Query`] values of any family.
//!
//! Three facilities, one building, one trajectory. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use conn::prelude::*;

fn main() -> Result<(), Error> {
    // Facilities (the data set P), one building (the obstacle set O) ...
    let facilities = vec![
        DataPoint::new(0, Point::new(250.0, 220.0)),
        DataPoint::new(1, Point::new(400.0, 120.0)),
        DataPoint::new(2, Point::new(700.0, 180.0)),
    ];
    let buildings = vec![Rect::new(180.0, 90.0, 330.0, 160.0)];
    // ... and a straight trajectory (the query segment q = [S, E]).
    let trajectory = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));

    // The scene indexes both sets in disk-simulating R*-trees (4 KB
    // pages); the service owns the scene and a warm query engine.
    let service = ConnService::new(Scene::new(facilities, buildings));

    // One CONN query answers "who is nearest?" for EVERY point of the
    // trajectory at once. `build()` validates up front — a degenerate or
    // NaN segment comes back as Error::InvalidQuery instead of panicking
    // deep inside the algorithm.
    let response = service.execute(&Query::conn(trajectory).build()?)?;
    let result = response.answer.as_conn().expect("conn answer");

    println!(
        "CONN result along a {:.0}-unit trajectory:",
        trajectory.len()
    );
    for (facility, interval) in result.segments() {
        match facility {
            Some(f) => println!(
                "  facility {} is the obstructed NN for t ∈ [{:.1}, {:.1}]",
                f.id, interval.lo, interval.hi
            ),
            None => println!(
                "  no facility reachable for t ∈ [{:.1}, {:.1}]",
                interval.lo, interval.hi
            ),
        }
    }

    let splits = result.split_points();
    println!("split points: {splits:.1?}");

    // Point probes: the obstructed distance at chosen locations.
    for t in [0.0, 300.0, 600.0, 1000.0] {
        if let Some((f, d)) = result.nn_at(t) {
            let euclid = f.pos.dist(trajectory.at(t));
            println!(
                "  at t = {t:6.1}: facility {} at obstructed distance {d:7.2} (euclidean {euclid:7.2})",
                f.id
            );
        }
    }

    // The same handle answers every other family — here the 2 nearest
    // facilities along the road, and the walking route to facility 2.
    let coknn = service.execute(&Query::coknn(trajectory, 2).build()?)?;
    println!(
        "\nCOkNN (k = 2) partitions the road into {} intervals",
        coknn
            .answer
            .as_coknn()
            .expect("coknn answer")
            .entries()
            .len()
    );
    let route =
        service.execute(&Query::route(Point::new(0.0, 0.0), Point::new(700.0, 180.0)).build()?)?;
    if let (Some(d), Some(path)) = (route.answer.distance(), route.answer.path()) {
        println!(
            "route to facility 2: {d:.1} units via {} waypoints",
            path.len()
        );
    }

    let stats = response.stats;
    println!(
        "\nquery cost: {:.3} s CPU + {} page faults × 10 ms = {:.3} s total \
         (NPE {}, NOE {}, |SVG| {})",
        stats.cpu.as_secs_f64(),
        stats.faults(),
        stats.total_seconds(),
        stats.npe,
        stats.noe,
        stats.svg_nodes,
    );
    Ok(())
}
