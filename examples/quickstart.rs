//! Quickstart: the smallest useful CONN query.
//!
//! Three facilities, one building, one trajectory. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use conn::prelude::*;

fn main() {
    // Facilities (the data set P) ...
    let facilities = vec![
        DataPoint::new(0, Point::new(250.0, 220.0)),
        DataPoint::new(1, Point::new(400.0, 120.0)),
        DataPoint::new(2, Point::new(700.0, 180.0)),
    ];
    // ... one building (the obstacle set O) ...
    let buildings = vec![Rect::new(180.0, 90.0, 330.0, 160.0)];
    // ... and a straight trajectory (the query segment q = [S, E]).
    let trajectory = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));

    // Index both sets in disk-simulating R*-trees (4 KB pages).
    let facility_tree = RStarTree::bulk_load(facilities, DEFAULT_PAGE_SIZE);
    let building_tree = RStarTree::bulk_load(buildings, DEFAULT_PAGE_SIZE);

    // One CONN query answers "who is nearest?" for EVERY point of the
    // trajectory at once.
    let (result, stats) = conn_search(
        &facility_tree,
        &building_tree,
        &trajectory,
        &ConnConfig::default(),
    );

    println!(
        "CONN result along a {:.0}-unit trajectory:",
        trajectory.len()
    );
    for (facility, interval) in result.segments() {
        match facility {
            Some(f) => println!(
                "  facility {} is the obstructed NN for t ∈ [{:.1}, {:.1}]",
                f.id, interval.lo, interval.hi
            ),
            None => println!(
                "  no facility reachable for t ∈ [{:.1}, {:.1}]",
                interval.lo, interval.hi
            ),
        }
    }

    let splits = result.split_points();
    println!("split points: {splits:.1?}");

    // Point probes: the obstructed distance at chosen locations.
    for t in [0.0, 300.0, 600.0, 1000.0] {
        if let Some((f, d)) = result.nn_at(t) {
            let euclid = f.pos.dist(trajectory.at(t));
            println!(
                "  at t = {t:6.1}: facility {} at obstructed distance {d:7.2} (euclidean {euclid:7.2})",
                f.id
            );
        }
    }

    println!(
        "\nquery cost: {:.3} s CPU + {} page faults × 10 ms = {:.3} s total \
         (NPE {}, NOE {}, |SVG| {})",
        stats.cpu.as_secs_f64(),
        stats.faults(),
        stats.total_seconds(),
        stats.npe,
        stats.noe,
        stats.svg_nodes,
    );
}
