//! City-scale run on the paper's synthetic workload: LA-like street
//! obstacles, CA-like clustered facilities, paper-default query parameters
//! (`ql = 4.5 %`, `k = 5`), comparing the two-tree and single-tree layouts
//! (paper §4.5 / Figure 13).
//!
//! ```text
//! cargo run --release --example city_scale [n_obstacles]
//! ```

use conn::datasets;
use conn::prelude::*;

fn main() {
    let n_obstacles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let n_points = n_obstacles / 2; // the sweet spot |P|/|O| ≈ 0.5 of Fig. 11

    eprintln!("generating {n_obstacles} street obstacles and {n_points} facilities …");
    let obstacles = datasets::la_like(n_obstacles, 42);
    let points_raw = datasets::ca_like(n_points, 42, &obstacles);
    let points = DataPoint::from_points(&points_raw);
    let queries = datasets::query_segments(5, datasets::DEFAULT_QL, 7, &obstacles);

    let data_tree = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let obstacle_tree = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let unified_tree = build_unified_tree(&points, &obstacles, DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();
    let k = datasets::DEFAULT_K;

    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "layout", "total(s)", "cpu(s)", "faults", "NPE", "NOE", "|SVG|"
    );
    for (qi, q) in queries.iter().enumerate() {
        let (res2, s2) = coknn_search(&data_tree, &obstacle_tree, q, k, &cfg);
        let (res1, s1) = coknn_search_single_tree(&unified_tree, q, k, &cfg);
        res2.check_cover().expect("2T cover");
        res1.check_cover().expect("1T cover");
        println!(
            "q{qi} 2T   {:>10.3} {:>10.3} {:>8} {:>8} {:>8} {:>10}",
            s2.total_seconds(),
            s2.cpu.as_secs_f64(),
            s2.faults(),
            s2.npe,
            s2.noe,
            s2.svg_nodes
        );
        println!(
            "q{qi} 1T   {:>10.3} {:>10.3} {:>8} {:>8} {:>8} {:>10}",
            s1.total_seconds(),
            s1.cpu.as_secs_f64(),
            s1.faults(),
            s1.npe,
            s1.noe,
            s1.svg_nodes
        );
        // the two layouts must agree on the answers
        for i in 0..=10 {
            let t = q.len() * (i as f64) / 10.0;
            let (a, b) = (res2.knn_at(t), res1.knn_at(t));
            assert_eq!(a.len(), b.len(), "layout mismatch at t={t}");
            for (x, y) in a.iter().zip(&b) {
                assert!((x.1 - y.1).abs() < 1e-6, "distance mismatch at t={t}");
            }
        }
    }
    println!("\nboth layouts returned identical answers on all probes ✓");
}
