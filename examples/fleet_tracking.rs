//! Streaming trajectory sessions: a delivery fleet moving through a city,
//! served through the typed [`ConnService`] front door.
//!
//! Several vans drive multi-leg routes between warehouse blocks. Each van
//! thread holds its own [`ConnService`] over the shared R\*-trees and
//! opens a streaming session behind it: every position ping extends the
//! trajectory by one leg and immediately yields the *delta* tuples —
//! which depot is nearest (by actual travel distance) along the stretch
//! just driven.
//!
//! Dispatch also keeps an ETA line per van: a typed `Route` query from
//! the depot to the van's latest position, answered per ping on the
//! service's warm engine — the repeated same-origin/moved-target pattern
//! that the Dijkstra kernel's *goal retargeting* serves without cold
//! restarts (watch the `label_retargets` counter).
//!
//! ```text
//! cargo run --release --example fleet_tracking
//! ```

use conn::prelude::*;

fn main() {
    // Depots the vans are served from.
    let depots = vec![
        DataPoint::new(0, Point::new(120.0, 150.0)),
        DataPoint::new(1, Point::new(880.0, 180.0)),
        DataPoint::new(2, Point::new(500.0, 860.0)),
    ];
    // City blocks: an irregular grid of buildings.
    let mut blocks = Vec::new();
    for i in 0..5 {
        for j in 0..4 {
            let (x, y) = (140.0 + i as f64 * 165.0, 260.0 + j as f64 * 150.0);
            if (i + 2 * j) % 4 != 1 {
                blocks.push(Rect::new(x, y, x + 95.0, y + 75.0));
            }
        }
    }
    let depot_tree = RStarTree::bulk_load(depots.clone(), DEFAULT_PAGE_SIZE);
    let block_tree = RStarTree::bulk_load(blocks.clone(), DEFAULT_PAGE_SIZE);

    // Each van's ping stream (first point = where it starts).
    let routes: [&[Point]; 3] = [
        &[
            Point::new(60.0, 60.0),
            Point::new(420.0, 90.0),
            Point::new(640.0, 230.0),
            Point::new(700.0, 520.0),
            Point::new(540.0, 700.0),
        ],
        &[
            Point::new(950.0, 80.0),
            Point::new(760.0, 240.0),
            Point::new(620.0, 430.0),
            Point::new(430.0, 560.0),
            Point::new(250.0, 700.0),
        ],
        &[
            Point::new(80.0, 900.0),
            Point::new(300.0, 820.0),
            Point::new(520.0, 740.0),
            Point::new(760.0, 680.0),
            Point::new(900.0, 480.0),
        ],
    ];

    let dispatch_depot = depots[0].pos;
    std::thread::scope(|scope| {
        for (van, pings) in routes.iter().enumerate() {
            let (depot_tree, block_tree) = (&depot_tree, &block_tree);
            scope.spawn(move || {
                // one service per van thread over the shared trees: the
                // session streams legs, the Route queries reuse the same
                // warm engine for the moving-target ETA line
                let service = ConnService::new(Scene::borrowing(depot_tree, block_tree));
                let pin = service.pin();
                let mut session = pin.open_session(pings[0], *service.config());
                let depot = dispatch_depot;
                let mut eta_retargets = 0;
                for &ping in &pings[1..] {
                    let delta = session.push_leg(ping);
                    let eta = service
                        .execute(&Query::route(depot, ping).build().expect("finite route"))
                        .expect("route query");
                    eta_retargets += eta.stats.reuse.label_retargets;
                    let eta_dist = eta.answer.distance().expect("route answer");
                    for (nn, iv) in &delta {
                        let who =
                            nn.map_or("unreachable".to_string(), |p| format!("depot {}", p.id));
                        println!(
                            "van {van}: km {:>6.1}–{:>6.1} → {who}   (ETA line from depot 0: {:.0})",
                            iv.lo, iv.hi, eta_dist
                        );
                    }
                }
                let (plan, stats) = session.finish();
                plan.check_cover().expect("route fully covered");
                println!(
                    "van {van}: {} legs, {:.0} total length, {} tuples | warm legs {} | \
                     obstacle loads {} | label reseeds {} | ETA retargets {}",
                    plan.trajectory().num_legs(),
                    plan.trajectory().len(),
                    plan.segments().len(),
                    stats.reuse.graph_reuses,
                    stats.noe,
                    stats.reuse.label_reseeds,
                    eta_retargets,
                );
            });
        }
    });
}
