//! Streaming trajectory sessions: a delivery fleet moving through a city.
//!
//! Several vans drive multi-leg routes between warehouse blocks. Each van
//! holds a [`TrajectorySession`]: every position ping extends its
//! trajectory by one leg and immediately yields the *delta* tuples — which
//! depot is nearest (by actual travel distance) along the stretch just
//! driven. The vans run concurrently, one session per thread, over the
//! same shared R\*-trees.
//!
//! Dispatch also keeps an ETA line per van: the obstructed route from the
//! depot to the van's latest position, recomputed per ping on one reused
//! engine — the repeated same-origin/moved-target pattern that the
//! Dijkstra kernel's *goal retargeting* serves without cold restarts.
//!
//! ```text
//! cargo run --release --example fleet_tracking
//! ```

use conn::prelude::*;
use conn_core::{QueryEngine, TrajectorySession};

fn main() {
    // Depots the vans are served from.
    let depots = vec![
        DataPoint::new(0, Point::new(120.0, 150.0)),
        DataPoint::new(1, Point::new(880.0, 180.0)),
        DataPoint::new(2, Point::new(500.0, 860.0)),
    ];
    // City blocks: an irregular grid of buildings.
    let mut blocks = Vec::new();
    for i in 0..5 {
        for j in 0..4 {
            let (x, y) = (140.0 + i as f64 * 165.0, 260.0 + j as f64 * 150.0);
            if (i + 2 * j) % 4 != 1 {
                blocks.push(Rect::new(x, y, x + 95.0, y + 75.0));
            }
        }
    }
    let depot_tree = RStarTree::bulk_load(depots.clone(), DEFAULT_PAGE_SIZE);
    let block_tree = RStarTree::bulk_load(blocks.clone(), DEFAULT_PAGE_SIZE);

    // Each van's ping stream (first point = where it starts).
    let routes: [&[Point]; 3] = [
        &[
            Point::new(60.0, 60.0),
            Point::new(420.0, 90.0),
            Point::new(640.0, 230.0),
            Point::new(700.0, 520.0),
            Point::new(540.0, 700.0),
        ],
        &[
            Point::new(950.0, 80.0),
            Point::new(760.0, 240.0),
            Point::new(620.0, 430.0),
            Point::new(430.0, 560.0),
            Point::new(250.0, 700.0),
        ],
        &[
            Point::new(80.0, 900.0),
            Point::new(300.0, 820.0),
            Point::new(520.0, 740.0),
            Point::new(760.0, 680.0),
            Point::new(900.0, 480.0),
        ],
    ];

    let dispatch_depot = depots[0].pos;
    std::thread::scope(|scope| {
        for (van, pings) in routes.iter().enumerate() {
            let (depot_tree, block_tree, blocks) = (&depot_tree, &block_tree, &blocks);
            scope.spawn(move || {
                let mut session = TrajectorySession::new(
                    depot_tree,
                    block_tree,
                    pings[0],
                    ConnConfig::default(),
                );
                // dispatch's ETA engine: one origin (depot 0), moving target
                let mut eta_engine = QueryEngine::default();
                let depot = dispatch_depot;
                for &ping in &pings[1..] {
                    let delta = session.push_leg(ping);
                    let (eta_dist, _) = eta_engine.obstructed_route(blocks, depot, ping);
                    for (nn, iv) in &delta {
                        let who = nn.map_or("unreachable".to_string(), |p| format!("depot {}", p.id));
                        println!(
                            "van {van}: km {:>6.1}–{:>6.1} → {who}   (ETA line from depot 0: {:.0})",
                            iv.lo, iv.hi, eta_dist
                        );
                    }
                }
                let (plan, stats) = session.finish();
                plan.check_cover().expect("route fully covered");
                println!(
                    "van {van}: {} legs, {:.0} total length, {} tuples | warm legs {} | \
                     obstacle loads {} | label reseeds {} | ETA retargets {}",
                    plan.trajectory().num_legs(),
                    plan.trajectory().len(),
                    plan.segments().len(),
                    stats.reuse.graph_reuses,
                    stats.noe,
                    stats.reuse.label_reseeds,
                    eta_engine.label_retargets(),
                );
            });
        }
    });
}
