//! The paper's Figure 1 scenario: a driver on highway I-95 asks for the
//! nearest gas station continuously along a stretch of road — once ignoring
//! obstacles (classic CNN) and once respecting them (CONN).
//!
//! The example shows the two headline phenomena of Figure 1(b):
//! * split points move when obstacles are considered, and
//! * the *answer object itself* can change (the Euclidean NN of the start
//!   point is not its obstructed NN).
//!
//! ```text
//! cargo run --release --example highway_gas_stations
//! ```

use conn::prelude::*;

fn main() {
    // Six gas stations, echoing the paper's {a, b, c, d, f, g}.
    let stations = vec![
        DataPoint::new(0, Point::new(60.0, 155.0)),  // a
        DataPoint::new(1, Point::new(340.0, 150.0)), // b
        DataPoint::new(2, Point::new(860.0, 170.0)), // c
        DataPoint::new(3, Point::new(120.0, 95.0)),  // d — Euclidean NN of S
        DataPoint::new(4, Point::new(540.0, 260.0)), // f
        DataPoint::new(5, Point::new(620.0, 120.0)), // g
    ];
    // Four rectangular obstacles; o3 walls station d off from the road start.
    let obstacles = vec![
        Rect::new(40.0, 40.0, 200.0, 80.0),    // o3: between S and d
        Rect::new(280.0, 60.0, 420.0, 100.0),  // o1
        Rect::new(500.0, 150.0, 580.0, 210.0), // o4: between f/g area
        Rect::new(700.0, 40.0, 800.0, 120.0),  // o2
    ];
    let highway = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));

    let station_tree = RStarTree::bulk_load(stations.clone(), DEFAULT_PAGE_SIZE);
    let obstacle_tree = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let empty_tree: RStarTree<Rect> = RStarTree::bulk_load(vec![], DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();

    // CNN: same machinery, empty obstacle set → Euclidean continuous NN.
    let (cnn, _) = conn_search(&station_tree, &empty_tree, &highway, &cfg);
    // CONN: obstacles respected.
    let (conn, stats) = conn_search(&station_tree, &obstacle_tree, &highway, &cfg);

    println!("CNN  (Euclidean, obstacles ignored):");
    print_segments(&cnn);
    println!("CONN (obstructed):");
    print_segments(&conn);

    // Phenomenon 1: the split points differ.
    println!("CNN  split points: {:.1?}", cnn.split_points());
    println!("CONN split points: {:.1?}", conn.split_points());

    // Phenomenon 2: the answer at S changes.
    let (cnn_s, cnn_d) = cnn.nn_at(0.0).expect("CNN answer at S");
    let (conn_s, conn_d) = conn.nn_at(0.0).expect("CONN answer at S");
    println!(
        "\nat S: Euclidean NN is station {} ({cnn_d:.1} away), \
         but the obstructed NN is station {} ({conn_d:.1} along the shortest path)",
        cnn_s.id, conn_s.id
    );
    assert_ne!(
        cnn_s.id, conn_s.id,
        "obstacle o3 must flip the winner at S — example geometry broken"
    );

    // And the obstructed path to the walled-off station is genuinely longer:
    let d3 = conn::obstructed_distance(&obstacles, stations[3].pos, highway.at(0.0));
    println!(
        "station 3's euclidean distance to S is {:.1}, its obstructed distance {:.1}",
        stations[3].pos.dist(highway.at(0.0)),
        d3
    );

    println!(
        "\nCONN query: {:.1} ms CPU, {} page faults, NPE {}, NOE {}",
        stats.cpu.as_secs_f64() * 1e3,
        stats.faults(),
        stats.npe,
        stats.noe
    );
}

fn print_segments(result: &ConnResult) {
    for (p, iv) in result.segments() {
        match p {
            Some(p) => println!("  ⟨station {}, [{:.1}, {:.1}]⟩", p.id, iv.lo, iv.hi),
            None => println!("  ⟨unreachable, [{:.1}, {:.1}]⟩", iv.lo, iv.hi),
        }
    }
}
