//! Renders a CONN query scene to SVG: obstacles, data points, the query
//! segment with its split points, and the per-interval answer coloring —
//! a visual check of the Figure-1-style output.
//!
//! ```text
//! cargo run --release --example render_scene [out.svg]
//! ```

use conn::prelude::*;
use std::fmt::Write as _;

const PALETTE: [&str; 8] = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628", "#f781bf", "#999999",
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "conn_scene.svg".to_string());

    // the highway scenario from examples/highway_gas_stations.rs
    let stations = vec![
        DataPoint::new(0, Point::new(60.0, 155.0)),
        DataPoint::new(1, Point::new(340.0, 150.0)),
        DataPoint::new(2, Point::new(860.0, 170.0)),
        DataPoint::new(3, Point::new(120.0, 95.0)),
        DataPoint::new(4, Point::new(540.0, 260.0)),
        DataPoint::new(5, Point::new(620.0, 120.0)),
    ];
    let obstacles = vec![
        Rect::new(40.0, 40.0, 200.0, 80.0),
        Rect::new(280.0, 60.0, 420.0, 100.0),
        Rect::new(500.0, 150.0, 580.0, 210.0),
        Rect::new(700.0, 40.0, 800.0, 120.0),
    ];
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));

    let st = RStarTree::bulk_load(stations.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let (result, _) = conn_search(&st, &ot, &q, &ConnConfig::default());

    let svg = render(&stations, &obstacles, &q, &result);
    std::fs::write(&out_path, svg).expect("write svg");
    println!("wrote {out_path}");
    for (p, iv) in result.segments() {
        println!(
            "  [{:6.1} – {:6.1}] → {}",
            iv.lo,
            iv.hi,
            p.map_or("∅".to_string(), |p| format!("station {}", p.id))
        );
    }
}

fn render(stations: &[DataPoint], obstacles: &[Rect], q: &Segment, result: &ConnResult) -> String {
    // world box with margins; SVG y grows downward → flip
    let (w, h) = (1050.0, 340.0);
    let flip = |p: Point| -> (f64, f64) { (p.x + 25.0, h - 40.0 - p.y) };
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = writeln!(s, r##"<rect width="{w}" height="{h}" fill="#fcfcfc"/>"##);

    // obstacles
    for r in obstacles {
        let (x, y) = flip(Point::new(r.min_x, r.max_y));
        let _ = writeln!(
            s,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="#bbb" stroke="#666"/>"##,
            r.width(),
            r.height()
        );
    }

    // answer intervals along q, colored by winning station
    for (p, iv) in result.segments() {
        let color = p.map_or("#000000", |p| PALETTE[p.id as usize % PALETTE.len()]);
        let (x1, y1) = flip(q.at(iv.lo));
        let (x2, y2) = flip(q.at(iv.hi));
        let _ = writeln!(
            s,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="6"/>"#
        );
    }
    // split points
    for t in result.split_points() {
        let (x, y) = flip(q.at(t));
        let _ = writeln!(
            s,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="#fff" stroke="#000" stroke-width="1.5"/>"##
        );
    }

    // stations, colored like their intervals
    for p in stations {
        let color = PALETTE[p.id as usize % PALETTE.len()];
        let (x, y) = flip(p.pos);
        let _ = writeln!(
            s,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="6" fill="{color}" stroke="#222"/>"##
        );
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="13" font-family="sans-serif">{}</text>"#,
            x + 9.0,
            y + 4.0,
            p.id
        );
    }

    // endpoints
    for (label, pt) in [("S", q.a), ("E", q.b)] {
        let (x, y) = flip(pt);
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="15" font-weight="bold" font-family="sans-serif">{label}</text>"#,
            x - 5.0,
            y + 22.0
        );
    }
    s.push_str("</svg>\n");
    s
}
