//! Trajectory CONN (the paper's §6 future-work extension): a patrol route
//! made of several consecutive legs, answered in one call.
//!
//! A security robot patrols a warehouse perimeter; shelving racks are
//! obstacles. For every point of the multi-leg route we want the nearest
//! charging dock by actual travel distance.
//!
//! ```text
//! cargo run --release --example patrol_route
//! ```

use conn::prelude::*;
use conn_core::{trajectory_conn_search, Trajectory};

fn main() {
    // Charging docks along the walls.
    let docks = vec![
        DataPoint::new(0, Point::new(50.0, 50.0)),
        DataPoint::new(1, Point::new(950.0, 80.0)),
        DataPoint::new(2, Point::new(900.0, 920.0)),
        DataPoint::new(3, Point::new(80.0, 880.0)),
        DataPoint::new(4, Point::new(500.0, 480.0)), // island dock
    ];
    // Shelving racks: long thin obstacles in two aislesets.
    let mut racks = Vec::new();
    for i in 0..4 {
        let y = 200.0 + i as f64 * 160.0;
        racks.push(Rect::new(150.0, y, 450.0, y + 40.0));
        racks.push(Rect::new(560.0, y, 860.0, y + 40.0));
    }

    // The patrol route: a rectangle-ish loop through the aisles.
    let route = Trajectory::new(vec![
        Point::new(100.0, 100.0),
        Point::new(900.0, 100.0),
        Point::new(900.0, 900.0),
        Point::new(100.0, 900.0),
        Point::new(100.0, 120.0),
    ]);

    let dock_tree = RStarTree::bulk_load(docks.clone(), DEFAULT_PAGE_SIZE);
    let rack_tree = RStarTree::bulk_load(racks.clone(), DEFAULT_PAGE_SIZE);

    let (plan, stats) =
        trajectory_conn_search(&dock_tree, &rack_tree, &route, &ConnConfig::default());
    plan.check_cover().expect("route fully covered");

    println!(
        "patrol route: {} legs, {:.0} m total, {} racks, {} docks",
        route.num_legs(),
        route.len(),
        racks.len(),
        docks.len()
    );
    println!("nearest dock by travel distance along the route:");
    for (dock, iv) in plan.segments() {
        match dock {
            Some(d) => println!("  route-km [{:7.1} – {:7.1}] → dock {}", iv.lo, iv.hi, d.id),
            None => println!("  route-km [{:7.1} – {:7.1}] → unreachable", iv.lo, iv.hi),
        }
    }
    println!("{} handovers along the loop", plan.split_points().len());

    // Spot check against a direct shortest-path computation.
    let probe = route.len() * 0.37;
    let dock = plan.nn_at(probe).expect("answer at probe");
    let d = conn::obstructed_distance(&racks, dock.pos, route.at(probe));
    println!(
        "\nat route position {probe:.0}: dock {} is {d:.1} m away around the racks",
        dock.id
    );

    println!(
        "query cost: {:.1} ms CPU, {} page faults, NPE {} (summed over legs)",
        stats.cpu.as_secs_f64() * 1e3,
        stats.faults(),
        stats.npe
    );
}
