//! The paper's motivating rescue scenario (§1): robots located survivors
//! under rubble; emergency crews advance along a cleared corridor and need,
//! at every position, the `k` nearest survivors by *actual walking
//! distance* around the debris — a COkNN query.
//!
//! ```text
//! cargo run --release --example disaster_rescue
//! ```

use conn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2009);

    // Debris field: scattered rubble piles (disjoint rectangles).
    let mut rubble: Vec<Rect> = Vec::new();
    while rubble.len() < 60 {
        let x = rng.gen_range(0.0..1900.0);
        let y = rng.gen_range(0.0..900.0);
        let w = rng.gen_range(30.0..140.0);
        let h = rng.gen_range(20.0..80.0);
        let r = Rect::new(x, y, x + w, y + h);
        if !rubble.iter().any(|o| o.intersects(&r)) {
            rubble.push(r);
        }
    }

    // Survivors: on or beside the rubble, never inside it.
    let mut survivors: Vec<DataPoint> = Vec::new();
    while survivors.len() < 40 {
        let p = Point::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..1000.0));
        if !rubble.iter().any(|r| r.strictly_contains(p)) {
            survivors.push(DataPoint::new(survivors.len() as u32, p));
        }
    }

    // The cleared corridor the crew advances along.
    let corridor = {
        let mut seg;
        loop {
            let a = Point::new(rng.gen_range(100.0..400.0), rng.gen_range(300.0..700.0));
            let b = Point::new(a.x + 1200.0, a.y + rng.gen_range(-150.0..150.0));
            seg = Segment::new(a, b);
            if !rubble.iter().any(|r| r.blocks(&seg)) {
                break;
            }
        }
        seg
    };

    let survivor_tree = RStarTree::bulk_load(survivors.clone(), DEFAULT_PAGE_SIZE);
    let rubble_tree = RStarTree::bulk_load(rubble.clone(), DEFAULT_PAGE_SIZE);

    let k = 3;
    let (plan, stats) = coknn_search(
        &survivor_tree,
        &rubble_tree,
        &corridor,
        k,
        &ConnConfig::default(),
    );
    plan.check_cover().expect("corridor fully covered");

    println!(
        "rescue plan: {} survivors, {} rubble piles, corridor of {:.0} m, k = {k}",
        survivors.len(),
        rubble.len(),
        corridor.len()
    );
    println!(
        "the corridor decomposes into {} stretches with a constant top-{k} set:",
        plan.segments().len()
    );
    for (ids, iv) in plan.segments().iter().take(12) {
        println!("  [{:6.1} – {:6.1}] → survivors {:?}", iv.lo, iv.hi, ids);
    }
    if plan.segments().len() > 12 {
        println!("  … ({} more stretches)", plan.segments().len() - 12);
    }

    // A concrete dispatch decision mid-corridor:
    let mid = corridor.len() / 2.0;
    println!("\nat the corridor midpoint, dispatch order (walking distance):");
    for (s, d) in plan.knn_at(mid) {
        let straight = s.pos.dist(corridor.at(mid));
        println!(
            "  survivor {:2} — {d:7.1} m around debris (straight line {straight:7.1} m, +{:.0}%)",
            s.id,
            (d / straight - 1.0) * 100.0
        );
    }

    println!(
        "\nquery cost: {:.1} ms CPU, {} page faults, NPE {}, NOE {}, |SVG| {}",
        stats.cpu.as_secs_f64() * 1e3,
        stats.faults(),
        stats.npe,
        stats.noe,
        stats.svg_nodes
    );
}
