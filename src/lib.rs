//! # conn — Continuous Obstructed Nearest Neighbor queries
//!
//! A full reproduction of *Gao & Zheng, "Continuous Obstructed Nearest
//! Neighbor Queries in Spatial Databases", SIGMOD 2009*: given data points
//! `P` and rectangular obstacles `O` in the plane and a query segment
//! `q = [S, E]`, report for **every** point of `q` its nearest data point
//! under the obstructed distance (shortest path avoiding all obstacle
//! interiors), as a list of `⟨point, interval⟩` tuples. The `COkNN`
//! generalization reports the `k` nearest per interval.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`geom`] — points, segments, rectangles, interval sets;
//! * [`index`] — the disk-simulating R\*-tree (page counters, LRU buffer);
//! * [`vgraph`] — incremental local visibility graph and Dijkstra;
//! * [`datasets`] — paper-style workload generators;
//! * the **typed front door**: [`Scene`] (owns the indexed world),
//!   [`Query`] (one validated request type per family, `k = 0` / NaN /
//!   degenerate input rejected as [`Error::InvalidQuery`] before any
//!   algorithm runs) and [`ConnService`] (`execute` one query of any
//!   family, `execute_batch` a *mixed-family* workload across the worker
//!   pool; `pin` an epoch snapshot and open a streaming
//!   [`TrajectorySession`] on it);
//! * the **concurrent serving layer**: [`SceneEpoch`] / [`PinnedEpoch`]
//!   (lock-free scene sharing — readers pin immutable snapshots while
//!   `publish` installs the next world), [`ShardSpec`] (overlapping
//!   spatial tiles with a certificate-or-fallback merge), [`EnginePool`]
//!   (persistent warm workers) and [`Admission`] (front-door queue that
//!   coalesces single queries into batches, rejecting with
//!   [`Error::Overloaded`] under backpressure);
//! * the **live-scene layer**: [`LiveScene`] (in-place R\*-tree mutation
//!   published as cheap derived epochs, a [`SceneDelta`] per edit),
//!   standing queries ([`ConnService::register`] →
//!   [`StandingHandle`]) patched per delta under kinetic-style
//!   certificate regions with a [`PatchReport`] accounting for every
//!   kept / tuple-patched / kernel-patched / recomputed answer;
//! * the legacy free functions at the root ([`conn_search`],
//!   [`coknn_search`], the single-tree variants, baselines) — thin
//!   wrappers over the service, answering byte-identically;
//! * the serving internals: [`QueryEngine`] (reset-and-reuse workspace —
//!   answer many queries with O(1) substrate allocations) and the
//!   per-family batch front-ends [`conn_batch`] / [`coknn_batch`] with
//!   [`BatchStats`].
//!
//! ## Example
//!
//! ```
//! use conn::prelude::*;
//!
//! // three gas stations and one building between the highway and station 0
//! let stations = vec![
//!     DataPoint::new(0, Point::new(250.0, 220.0)),
//!     DataPoint::new(1, Point::new(400.0, 120.0)),
//!     DataPoint::new(2, Point::new(700.0, 180.0)),
//! ];
//! let buildings = vec![Rect::new(180.0, 90.0, 330.0, 160.0)];
//! let highway = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
//!
//! let service = ConnService::new(Scene::new(stations, buildings));
//! let response = service.execute(&Query::conn(highway).build()?)?;
//! let result = response.answer.as_conn().expect("conn answer");
//! for (station, interval) in result.segments() {
//!     println!("{station:?} is nearest along [{:.0}, {:.0}]", interval.lo, interval.hi);
//! }
//! assert!(response.stats.npe >= 1);
//!
//! // the same handle answers every family — kNN variant, point probes,
//! // ranges, reverse NN, routes, joins, whole trajectories:
//! let knn = service.execute(&Query::coknn(highway, 2).build()?)?;
//! assert!(!knn.answer.as_coknn().expect("coknn answer").entries().is_empty());
//! # Ok::<(), conn::Error>(())
//! ```
//!
//! The free-function surface remains the compatibility path:
//!
//! ```
//! # use conn::prelude::*;
//! # let stations = vec![DataPoint::new(0, Point::new(250.0, 220.0))];
//! # let buildings = vec![Rect::new(180.0, 90.0, 330.0, 160.0)];
//! let stations_tree = RStarTree::bulk_load(stations, DEFAULT_PAGE_SIZE);
//! let buildings_tree = RStarTree::bulk_load(buildings, DEFAULT_PAGE_SIZE);
//! let highway = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
//! let (result, stats) = conn_search(
//!     &stations_tree,
//!     &buildings_tree,
//!     &highway,
//!     &ConnConfig::default(),
//! );
//! assert!(!result.segments().is_empty());
//! assert!(stats.npe >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use conn_datasets as datasets;
pub use conn_geom as geom;
pub use conn_index as index;
pub use conn_vgraph as vgraph;

pub use conn_core::baseline;
pub use conn_core::{
    answers_equivalent, build_unified_tree, coknn_batch, coknn_search, coknn_search_single_tree,
    conn_batch, conn_search, conn_search_single_tree, naive_conn_by_onn, obstructed_closest_pair,
    obstructed_distance, obstructed_edistance_join, obstructed_path, obstructed_range_search,
    obstructed_rnn, obstructed_route, onn_search, trajectory_coknn_search, trajectory_conn_batch,
    trajectory_conn_search, visible_knn, Admission, AdmissionConfig, Answer, BatchStats,
    CoknnResult, ConnConfig, ConnResult, ConnService, ControlPoint, DataPoint, EnginePool, Error,
    LiveScene, PatchReport, PinnedEpoch, Query, QueryBuilder, QueryEngine, QueryKind, QueryStats,
    Response, ResultEntry, ResultList, ReuseCounters, Scene, SceneDelta, SceneEpoch, Shard,
    ShardSet, ShardSpec, SpatialObject, StandingHandle, SweepMode, Ticket, Trajectory,
    TrajectoryCoknnSession, TrajectoryResult, TrajectorySession,
};

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use conn_core::{
        build_unified_tree, coknn_batch, coknn_search, coknn_search_single_tree, conn_batch,
        conn_search, conn_search_single_tree, obstructed_distance, obstructed_range_search,
        obstructed_rnn, onn_search, trajectory_conn_search, Admission, AdmissionConfig, Answer,
        BatchStats, CoknnResult, ConnConfig, ConnResult, ConnService, DataPoint, Error, LiveScene,
        PatchReport, PinnedEpoch, Query, QueryEngine, QueryStats, Response, ReuseCounters, Scene,
        SceneDelta, SceneEpoch, ShardSpec, StandingHandle, Ticket, Trajectory, TrajectorySession,
    };
    pub use conn_geom::{Interval, Point, Rect, Segment};
    pub use conn_index::{RStarTree, DEFAULT_PAGE_SIZE};
}
