//! Acceptance test of the unified `Scene`/`Query`/`ConnService` front
//! door: one **mixed-family** `execute_batch` call covering (at least)
//! Conn, Coknn, Range, Rnn and Trajectory, with every answer checked
//! bit-for-bit against the corresponding legacy free function.

use std::sync::Arc;

use conn::datasets;
use conn::prelude::*;
use conn_core::{obstructed_closest_pair, QueryKind};

fn scene() -> Scene<'static> {
    let obstacles = datasets::la_like(60, 42);
    let points = DataPoint::from_points(&datasets::uniform_points(24, 43, &obstacles));
    Scene::new(points, obstacles)
}

fn other_set() -> Arc<RStarTree<DataPoint>> {
    let obstacles = datasets::la_like(60, 42);
    let pts: Vec<DataPoint> = datasets::uniform_points(6, 99, &obstacles)
        .iter()
        .enumerate()
        .map(|(i, p)| DataPoint::new(5000 + i as u32, *p))
        .collect();
    Arc::new(RStarTree::bulk_load(pts, DEFAULT_PAGE_SIZE))
}

#[test]
fn mixed_family_batch_matches_free_functions() {
    let scene = scene();
    let service = ConnService::new(Scene::borrowing(scene.data_tree(), scene.obstacle_tree()));
    let cfg = *service.config();
    let obstacles = scene.obstacles();
    let other = other_set();

    let q1 = Segment::new(Point::new(800.0, 700.0), Point::new(2300.0, 900.0));
    let q2 = Segment::new(Point::new(4000.0, 4100.0), Point::new(5200.0, 3600.0));
    let probe = Point::new(2500.0, 2500.0);
    let route = Trajectory::new(vec![
        Point::new(1000.0, 1000.0),
        Point::new(2200.0, 1300.0),
        Point::new(2400.0, 2600.0),
    ]);

    // the acceptance mix: Conn, Coknn, Range, Rnn, Trajectory — plus the
    // rest of the families riding along
    let batch = vec![
        Query::conn(q1).build().unwrap(),
        Query::coknn(q2, 3).build().unwrap(),
        Query::range(probe, 900.0).build().unwrap(),
        Query::rnn(probe).build().unwrap(),
        Query::trajectory(route.clone(), 1).build().unwrap(),
        Query::onn(probe, 4).build().unwrap(),
        Query::odist(q1.a, q2.b).build().unwrap(),
        Query::route(q1.a, q2.b).build().unwrap(),
        Query::closest_pair(Arc::clone(&other)).build().unwrap(),
    ];

    let (responses, stats) = service.execute_batch_threads(&batch, 3).unwrap();
    assert_eq!(responses.len(), batch.len());
    assert_eq!(stats.queries, batch.len());
    assert!(stats.threads >= 1 && stats.threads <= 3);
    assert!(stats.pooled.reads() > 0, "batch must pool tree I/O");

    let dt = scene.data_tree();
    let ot = scene.obstacle_tree();
    for (resp, query) in responses.iter().zip(&batch) {
        match (query.kind(), &resp.answer) {
            (QueryKind::Conn { q }, Answer::Conn(got)) => {
                let (want, _) = conn_search(dt, ot, q, &cfg);
                assert_eq!(got.entries().len(), want.entries().len());
                for (x, y) in got.entries().iter().zip(want.entries()) {
                    assert_eq!(x.point.map(|p| p.id), y.point.map(|p| p.id));
                    assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                    assert_eq!(x.interval.hi.to_bits(), y.interval.hi.to_bits());
                }
            }
            (QueryKind::Coknn { q, k }, Answer::Coknn(got)) => {
                let (want, _) = coknn_search(dt, ot, q, *k, &cfg);
                assert_eq!(got.entries().len(), want.entries().len());
                for (x, y) in got.entries().iter().zip(want.entries()) {
                    assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                    assert_eq!(x.members.len(), y.members.len());
                }
            }
            (QueryKind::Range { s, radius }, Answer::Range(got)) => {
                let (want, _) = obstructed_range_search(dt, ot, *s, *radius, &cfg);
                assert_eq!(
                    got.iter()
                        .map(|(p, d)| (p.id, d.to_bits()))
                        .collect::<Vec<_>>(),
                    want.iter()
                        .map(|(p, d)| (p.id, d.to_bits()))
                        .collect::<Vec<_>>()
                );
            }
            (QueryKind::Rnn { s }, Answer::Rnn(got)) => {
                let (want, _) = obstructed_rnn(dt, ot, *s, &cfg);
                assert_eq!(
                    got.iter()
                        .map(|(p, d)| (p.id, d.to_bits()))
                        .collect::<Vec<_>>(),
                    want.iter()
                        .map(|(p, d)| (p.id, d.to_bits()))
                        .collect::<Vec<_>>()
                );
            }
            (QueryKind::Trajectory { route, .. }, Answer::Trajectory(got)) => {
                let (want, _) = trajectory_conn_search(dt, ot, route, &cfg);
                got.check_cover().unwrap();
                assert_eq!(got.segments().len(), want.segments().len());
                for (x, y) in got.segments().iter().zip(want.segments()) {
                    assert_eq!(x.0.map(|p| p.id), y.0.map(|p| p.id));
                    assert_eq!(x.1.lo.to_bits(), y.1.lo.to_bits());
                    assert_eq!(x.1.hi.to_bits(), y.1.hi.to_bits());
                }
            }
            (QueryKind::Onn { s, k }, Answer::Onn(got)) => {
                let (want, _) = onn_search(dt, ot, *s, *k, &cfg);
                assert_eq!(
                    got.iter()
                        .map(|(p, d)| (p.id, d.to_bits()))
                        .collect::<Vec<_>>(),
                    want.iter()
                        .map(|(p, d)| (p.id, d.to_bits()))
                        .collect::<Vec<_>>()
                );
            }
            (QueryKind::Odist { a, b }, Answer::Odist(got)) => {
                assert_eq!(
                    got.to_bits(),
                    obstructed_distance(&obstacles, *a, *b).to_bits()
                );
            }
            (QueryKind::Route { a, b }, Answer::Route { dist, .. }) => {
                assert_eq!(
                    dist.to_bits(),
                    obstructed_distance(&obstacles, *a, *b).to_bits()
                );
            }
            (QueryKind::ClosestPair { .. }, Answer::ClosestPair(got)) => {
                let (want, _) = obstructed_closest_pair(dt, &other, ot, &cfg);
                assert_eq!(
                    got.map(|(a, b, d)| (a.id, b.id, d.to_bits())),
                    want.map(|(a, b, d)| (a.id, b.id, d.to_bits()))
                );
            }
            (kind, answer) => panic!("mismatched family: {kind:?} answered {answer:?}"),
        }
    }
}

#[test]
fn validation_errors_surface_before_execution() {
    let degenerate = Segment::new(Point::new(7.0, 7.0), Point::new(7.0, 7.0));
    let err = Query::conn(degenerate).build().unwrap_err();
    assert!(matches!(err, Error::InvalidQuery(_)));
    assert!(err.to_string().contains("degenerate"));
    assert!(
        Query::coknn(Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)), 0)
            .build()
            .is_err()
    );
}

#[test]
fn service_owns_scene_and_sessions() {
    let service = ConnService::new(scene());
    // execute against the owned scene
    let resp = service
        .execute(
            &Query::conn(Segment::new(
                Point::new(500.0, 500.0),
                Point::new(1800.0, 700.0),
            ))
            .build()
            .unwrap(),
        )
        .unwrap();
    resp.answer.as_conn().unwrap().check_cover().unwrap();

    // a streaming session behind the same handle, pinned to its epoch
    let pin = service.pin();
    let mut session = pin.open_session(Point::new(1000.0, 1000.0), *service.config());
    let delta = session.push_leg(Point::new(2000.0, 1200.0));
    assert!(!delta.is_empty());
    session.push_leg(Point::new(2100.0, 2400.0));
    let (plan, _) = session.finish();
    plan.check_cover().unwrap();
}
