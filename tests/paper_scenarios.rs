//! Scenario tests transcribing the paper's worked figures: the Figure 1
//! CNN-vs-CONN contrast, the Figure 3 control-point structure, and the
//! Figure 2 visibility-graph path.

use conn::baseline::brute_force_oknn;
use conn::prelude::*;
use conn::vgraph::{DijkstraEngine, NodeKind, VisGraph};

/// Figure 2: multiple paths exist in the visibility graph; Dijkstra picks
/// the shortest and it bends only at obstacle corners.
#[test]
fn figure2_visibility_graph_shortest_path() {
    let obstacles = [
        Rect::new(150.0, 100.0, 260.0, 190.0), // o1
        Rect::new(320.0, 60.0, 430.0, 150.0),  // o2
    ];
    let ps = Point::new(80.0, 60.0);
    let pe = Point::new(500.0, 200.0);
    let mut g = VisGraph::new(60.0);
    let s = g.add_point(ps, NodeKind::DataPoint);
    let e = g.add_point(pe, NodeKind::DataPoint);
    for r in &obstacles {
        g.add_obstacle(*r);
    }
    let mut d = DijkstraEngine::new(&g, s);
    let dist = d.run_until_settled(&mut g, e);
    assert!(dist.is_finite());
    assert!(dist > ps.dist(pe), "straight line is blocked");
    let path = d.path_to(e);
    assert!(path.len() >= 3, "path must bend at least once");
    // interior path vertices are obstacle corners
    for n in &path[1..path.len() - 1] {
        let p = g.node_pos(*n);
        assert!(
            obstacles
                .iter()
                .flat_map(|r| r.corners())
                .any(|c| c.dist(p) < 1e-9),
            "bend at non-corner {p}"
        );
    }
    // and the polyline length equals the reported distance
    let mut total = 0.0;
    for w in path.windows(2) {
        total += g.node_pos(w[0]).dist(g.node_pos(w[1]));
    }
    assert!((total - dist).abs() < 1e-9);
}

/// Figure 3's structure: a data point `p` whose view of the middle of `q`
/// is blocked; the control point list opens with `p` itself, hands over to
/// obstacle corners in the shadow, and returns to `p`.
#[test]
fn figure3_control_point_handover() {
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
    let points = vec![DataPoint::new(0, Point::new(50.0, 60.0))];
    let obstacles = vec![Rect::new(40.0, 20.0, 60.0, 40.0)];
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let (res, _) = conn_search(&dt, &ot, &q, &ConnConfig::default());
    res.check_cover().unwrap();

    // ends are directly visible: obstructed == euclidean there
    for t in [0.0, 100.0] {
        let (_, d) = res.nn_at(t).unwrap();
        assert!((d - points[0].pos.dist(q.at(t))).abs() < 1e-9, "t = {t}");
    }
    // the shadowed middle routes via a corner: strictly longer, and equal to
    // the brute-force shortest path
    let (_, d_mid) = res.nn_at(50.0).unwrap();
    assert!(d_mid > points[0].pos.dist(q.at(50.0)) + 1.0);
    let want = brute_force_oknn(&points, &obstacles, q.at(50.0), 1)[0].1;
    assert!((d_mid - want).abs() < 1e-6);

    // the result holds multiple control-point tuples for the single answer
    // point (the ⟨p, cp, R⟩ decomposition of §3) …
    assert!(res.entries().len() >= 3, "{:?}", res.entries());
    // … but the user-facing answer is one tuple: p owns the whole segment
    assert_eq!(res.segments().len(), 1);
}

/// Figure 1(b): with obstacles, both the split positions and the answer
/// objects differ from the Euclidean CNN result.
#[test]
fn figure1_cnn_vs_conn() {
    let stations = vec![
        DataPoint::new(0, Point::new(60.0, 155.0)),
        DataPoint::new(1, Point::new(340.0, 150.0)),
        DataPoint::new(2, Point::new(860.0, 170.0)),
        DataPoint::new(3, Point::new(120.0, 95.0)),
        DataPoint::new(4, Point::new(540.0, 260.0)),
        DataPoint::new(5, Point::new(620.0, 120.0)),
    ];
    let obstacles = vec![
        Rect::new(40.0, 40.0, 200.0, 80.0),
        Rect::new(280.0, 60.0, 420.0, 100.0),
        Rect::new(500.0, 150.0, 580.0, 210.0),
        Rect::new(700.0, 40.0, 800.0, 120.0),
    ];
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
    let st = RStarTree::bulk_load(stations.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let empty: RStarTree<Rect> = RStarTree::bulk_load(vec![], DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();

    let (cnn, _) = conn_search(&st, &empty, &q, &cfg);
    let (conn, _) = conn_search(&st, &ot, &q, &cfg);

    // answer flips at S: Euclidean winner is station 3, obstructed winner 0
    assert_eq!(cnn.nn_at(0.0).unwrap().0.id, 3);
    assert_eq!(conn.nn_at(0.0).unwrap().0.id, 0);

    // split points differ
    let cnn_splits = cnn.split_points();
    let conn_splits = conn.split_points();
    assert_ne!(cnn_splits.len(), conn_splits.len());

    // CONN distances dominate CNN distances pointwise
    for i in 0..=40 {
        let t = q.len() * (i as f64) / 40.0;
        let (_, d_cnn) = cnn.nn_at(t).unwrap();
        let (_, d_conn) = conn.nn_at(t).unwrap();
        assert!(d_conn + 1e-9 >= d_cnn, "t = {t}");
    }
}

/// Running example of §4.3 (Figure 8 shape): three points, staggered
/// obstacles; verify winners at hand-picked probes via brute force.
#[test]
fn figure8_three_point_interaction() {
    let points = vec![
        DataPoint::new(0, Point::new(15.0, 45.0)), // a
        DataPoint::new(1, Point::new(50.0, 35.0)), // b
        DataPoint::new(2, Point::new(85.0, 50.0)), // c
    ];
    let obstacles = vec![
        Rect::new(8.0, 18.0, 28.0, 26.0),  // o1 under a
        Rect::new(42.0, 15.0, 58.0, 22.0), // o2 under b
        Rect::new(78.0, 20.0, 95.0, 28.0), // o3 under c
    ];
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let (res, stats) = conn_search(&dt, &ot, &q, &ConnConfig::default());
    res.check_cover().unwrap();
    assert_eq!(stats.npe, 3, "all three points interact");
    for i in 0..=20 {
        let t = q.len() * (i as f64) / 20.0;
        let want = brute_force_oknn(&points, &obstacles, q.at(t), 1)[0];
        let (got_p, got_d) = res.nn_at(t).unwrap();
        assert!((got_d - want.1).abs() < 1e-6, "t = {t}");
        if (got_d - want.1).abs() < 1e-9 && got_p.id != want.0.id {
            continue; // tie
        }
        assert_eq!(got_p.id, want.0.id, "t = {t}");
    }
}
