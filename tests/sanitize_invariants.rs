//! The sanitizer must observe, never steer: with the `sanitize-invariants`
//! feature compiled in, answers must be byte-identical whether the runtime
//! switch is on or off. This is the contract that makes `repro --sanitize`
//! overhead numbers meaningful and lets CI run the sanitized suite as a
//! drop-in.
//!
//! Byte identity is asserted through `Debug` formatting: Rust's `f64`
//! Debug output is shortest-roundtrip and injective (distinct bit patterns
//! print distinctly, including `-0.0`), so equal strings mean equal bits.
//!
//! The runtime switch is process-global; this file deliberately holds a
//! single `#[test]` so nothing races the toggling.

#![cfg(feature = "sanitize-invariants")]

use conn::datasets::{ca_like, la_like, query_segment, uniform_points};
use conn::geom::sanitize;
use conn::prelude::*;
use conn::{coknn_search, conn_search, ConnConfig};
use proptest::prelude::*;

/// A reproducible workload: LA-like obstacles, uniform or CA-like
/// clustered points, and an obstacle-avoiding query segment.
fn scene(seed: u64, clustered: bool) -> (Vec<DataPoint>, Vec<Rect>, Segment) {
    let obstacles = la_like(40, seed);
    let raw = if clustered {
        ca_like(50, seed ^ 0xC0FFEE, &obstacles)
    } else {
        uniform_points(50, seed ^ 0xC0FFEE, &obstacles)
    };
    let points = raw
        .into_iter()
        .enumerate()
        .map(|(i, p)| DataPoint::new(i as u32, p))
        .collect();
    let q = query_segment(0.05, seed ^ 0xBEEF, &obstacles);
    (points, obstacles, q)
}

/// Runs CONN + COkNN on the scene and renders both answers to their full
/// Debug form (query segment, every interval boundary, every distance).
fn answers(points: &[DataPoint], obstacles: &[Rect], q: &Segment, cfg: &ConnConfig) -> String {
    let dt = RStarTree::bulk_load(points.to_vec(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.to_vec(), DEFAULT_PAGE_SIZE);
    let (conn_res, _) = conn_search(&dt, &ot, q, cfg);
    let (coknn_res, _) = coknn_search(&dt, &ot, q, 3, cfg);
    format!("{conn_res:?}\n{coknn_res:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn sanitizer_never_changes_answers(seed in 0u64..1 << 32, clustered in any::<bool>()) {
        let (points, obstacles, q) = scene(seed, clustered);
        for cfg in [ConnConfig::default(), ConnConfig::baseline_kernel()] {
            sanitize::set_enabled(false);
            let off = answers(&points, &obstacles, &q, &cfg);
            sanitize::set_enabled(true);
            let on = answers(&points, &obstacles, &q, &cfg);
            prop_assert_eq!(
                off,
                on,
                "audits changed the answer (seed {}, clustered {})",
                seed,
                clustered
            );
        }
    }
}
