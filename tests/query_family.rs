//! Integration tests for the extended obstructed-query family on generated
//! workloads: snapshot ONN, range, reverse-NN, closest pair, e-distance
//! join, visible kNN and trajectory CONN, each checked against brute force.

use conn::baseline::brute_force_oknn;
use conn::datasets;
use conn::prelude::*;
use conn_core::{
    obstructed_closest_pair, obstructed_edistance_join, obstructed_range_search, obstructed_rnn,
    visible_knn,
};
use conn_geom::Segment;

fn world(seed: u64, n_pts: usize, n_obs: usize) -> (Vec<DataPoint>, Vec<Rect>) {
    let obstacles = datasets::la_like(n_obs, seed);
    let raw = datasets::uniform_points(n_pts, seed, &obstacles);
    (DataPoint::from_points(&raw), obstacles)
}

#[test]
fn onn_family_agrees_with_brute_force_on_workload() {
    let (points, obstacles) = world(101, 50, 120);
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();
    let probes = datasets::uniform_points(5, 77, &obstacles);

    for s in probes {
        // snapshot ONN
        let (onn, _) = onn_search(&dt, &ot, s, 4, &cfg);
        let want = brute_force_oknn(&points, &obstacles, s, 4);
        assert_eq!(onn.len(), want.len());
        for ((_, gd), (_, wd)) in onn.iter().zip(&want) {
            assert!((gd - wd).abs() < 1e-6);
        }

        // range at the 3rd-NN distance must contain ≥ 3 points
        if want.len() >= 3 {
            let radius = want[2].1 + 1e-9;
            let (in_range, _) = obstructed_range_search(&dt, &ot, s, radius, &cfg);
            assert!(in_range.len() >= 3);
            for (p, d) in &in_range {
                assert!(*d <= radius);
                let true_d = conn::obstructed_distance(&obstacles, p.pos, s);
                assert!((d - true_d).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn rnn_counts_are_sane_and_exact() {
    let (points, obstacles) = world(31, 16, 50);
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();
    let s = datasets::uniform_points(1, 5, &obstacles)[0];
    let (rnn, _) = obstructed_rnn(&dt, &ot, s, &cfg);
    // brute force cross-check
    for p in &points {
        let d_s = conn::obstructed_distance(&obstacles, p.pos, s);
        let best_other = points
            .iter()
            .filter(|o| o.id != p.id)
            .map(|o| conn::obstructed_distance(&obstacles, p.pos, o.pos))
            .fold(f64::INFINITY, f64::min);
        let is_rnn = d_s.is_finite() && d_s < best_other;
        assert_eq!(
            rnn.iter().any(|(r, _)| r.id == p.id),
            is_rnn,
            "point {} misclassified",
            p.id
        );
    }
}

#[test]
fn closest_pair_and_join_on_workload() {
    let obstacles = datasets::la_like(50, 9);
    let a = DataPoint::from_points(&datasets::uniform_points(10, 1, &obstacles));
    let b: Vec<DataPoint> = datasets::uniform_points(10, 2, &obstacles)
        .iter()
        .enumerate()
        .map(|(i, p)| DataPoint::new(1000 + i as u32, *p))
        .collect();
    let ta = RStarTree::bulk_load(a.clone(), DEFAULT_PAGE_SIZE);
    let tb = RStarTree::bulk_load(b.clone(), DEFAULT_PAGE_SIZE);
    let to = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();

    let (cp, _) = obstructed_closest_pair(&ta, &tb, &to, &cfg);
    let (pa, pb, d) = cp.expect("non-empty sets");
    // brute force
    let mut best = f64::INFINITY;
    for x in &a {
        for y in &b {
            best = best.min(conn::obstructed_distance(&obstacles, x.pos, y.pos));
        }
    }
    assert!((d - best).abs() < 1e-6, "{d} vs {best}");
    let direct = conn::obstructed_distance(&obstacles, pa.pos, pb.pos);
    assert!((d - direct).abs() < 1e-6);

    // the e-join at radius d must contain exactly the closest pair(s)
    let (pairs, _) = obstructed_edistance_join(&ta, &tb, &to, d + 1e-9, &cfg);
    assert!(!pairs.is_empty());
    assert!(pairs.iter().any(|(x, y, _)| x.id == pa.id && y.id == pb.id));
    for (_, _, pd) in &pairs {
        assert!(*pd <= d + 1e-6);
    }
}

#[test]
fn visible_knn_on_workload() {
    let (points, obstacles) = world(55, 50, 120);
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let s = datasets::uniform_points(1, 3, &obstacles)[0];
    let (vis, _) = visible_knn(&dt, &ot, s, 5, &ConnConfig::default());
    // brute force: visible points sorted by euclid
    let mut want: Vec<(u32, f64)> = points
        .iter()
        .filter(|p| !obstacles.iter().any(|r| r.blocks(&Segment::new(s, p.pos))))
        .map(|p| (p.id, p.pos.dist(s)))
        .collect();
    want.sort_by(|a, b| a.1.total_cmp(&b.1));
    want.truncate(5);
    assert_eq!(vis.len(), want.len());
    for ((gp, gd), (wid, wd)) in vis.iter().zip(&want) {
        assert_eq!(gp.id, *wid);
        assert!((gd - wd).abs() < 1e-9);
    }
}

#[test]
fn trajectory_conn_on_workload() {
    let (points, obstacles) = world(71, 40, 100);
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    // build a 3-leg trajectory from segment endpoints that avoid obstacles
    let segs = datasets::query_segments(3, 0.03, 13, &obstacles);
    let candidates = vec![segs[0].a, segs[0].b];
    let route = Trajectory::new(candidates);
    let (plan, stats) = trajectory_conn_search(&dt, &ot, &route, &ConnConfig::default());
    plan.check_cover().unwrap();
    assert!(stats.npe >= 1);
    for i in 0..=10 {
        let t = route.len() * (i as f64) / 10.0;
        if let Some(p) = plan.nn_at(t) {
            let want = brute_force_oknn(&points, &obstacles, route.at(t), 1)[0];
            let got_d = conn::obstructed_distance(&obstacles, p.pos, route.at(t));
            assert!((got_d - want.1).abs() < 1e-6, "t = {t}");
        }
    }
}
