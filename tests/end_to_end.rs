//! Whole-pipeline integration tests: datasets → R-trees → CONN/COkNN →
//! validation against brute force, plus the evaluation-level trends the
//! paper reports (cost grows with ql and k; |SVG| ≪ FULL; buffers cut
//! faults; 1T competitive with 2T).

use conn::baseline::brute_force_oknn;
use conn::datasets;
use conn::prelude::*;

/// One small CL-style world shared by several tests.
fn world(seed: u64, n_obs: usize, n_pts: usize) -> (Vec<DataPoint>, Vec<Rect>) {
    let obstacles = datasets::la_like(n_obs, seed);
    let raw = datasets::ca_like(n_pts, seed, &obstacles);
    (DataPoint::from_points(&raw), obstacles)
}

#[test]
fn generated_workload_answers_match_brute_force() {
    let (points, obstacles) = world(31, 250, 120);
    let queries = datasets::query_segments(4, 0.05, 99, &obstacles);
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    for q in &queries {
        let (res, stats) = coknn_search(&dt, &ot, q, 3, &ConnConfig::default());
        res.check_cover().unwrap();
        assert!(stats.npe >= 3);
        for i in 0..=10 {
            let t = q.len() * (i as f64) / 10.0;
            let want = brute_force_oknn(&points, &obstacles, q.at(t), 3);
            let got = res.knn_at(t);
            assert_eq!(got.len(), want.len().min(3), "t = {t}");
            for ((_, gd), (_, wd)) in got.iter().zip(&want) {
                assert!((gd - wd).abs() < 1e-6, "t = {t}: {gd} vs {wd}");
            }
        }
    }
}

#[test]
fn cost_grows_with_query_length() {
    let (points, obstacles) = world(7, 400, 200);
    let dt = RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();
    let mut costs = Vec::new();
    for ql in [0.02, 0.08] {
        let queries = datasets::query_segments(6, ql, 5, &obstacles);
        let mut noe = 0u64;
        let mut npe = 0u64;
        for q in &queries {
            let (_, s) = coknn_search(&dt, &ot, q, 5, &cfg);
            noe += s.noe;
            npe += s.npe;
        }
        costs.push((noe, npe));
    }
    assert!(costs[1].0 > costs[0].0, "NOE must grow with ql: {costs:?}");
    assert!(
        costs[1].1 >= costs[0].1,
        "NPE must not shrink with ql: {costs:?}"
    );
}

#[test]
fn cost_grows_with_k() {
    let (points, obstacles) = world(17, 400, 200);
    let dt = RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let q = datasets::query_segment(0.05, 3, &obstacles);
    let cfg = ConnConfig::default();
    let (_, s1) = coknn_search(&dt, &ot, &q, 1, &cfg);
    let (_, s9) = coknn_search(&dt, &ot, &q, 9, &cfg);
    assert!(s9.npe >= s1.npe, "{} vs {}", s9.npe, s1.npe);
    assert!(s9.noe >= s1.noe);
    assert!(s9.svg_nodes >= s1.svg_nodes);
}

#[test]
fn local_graph_is_much_smaller_than_full() {
    let (points, obstacles) = world(23, 600, 300);
    let full = 4 * obstacles.len() as u64;
    let dt = RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let q = datasets::query_segment(0.045, 8, &obstacles);
    let (_, stats) = coknn_search(&dt, &ot, &q, 5, &ConnConfig::default());
    assert!(
        stats.svg_nodes * 3 < full,
        "|SVG| = {} vs FULL = {full}: local graph not local",
        stats.svg_nodes
    );
}

#[test]
fn buffer_only_affects_faults() {
    // trees must span enough pages that a 32 % buffer holds whole levels
    let (points, obstacles) = world(3, 3000, 1500);
    let dt = RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let queries = datasets::query_segments(6, 0.045, 77, &obstacles);
    let cfg = ConnConfig::default();

    let run = |frac: f64| -> (u64, u64) {
        dt.set_buffer_frac(frac);
        ot.set_buffer_frac(frac);
        dt.clear_buffer();
        ot.clear_buffer();
        let mut reads = 0;
        let mut faults = 0;
        for q in &queries {
            let (_, s) = coknn_search(&dt, &ot, q, 5, &cfg);
            reads += s.reads();
            faults += s.faults();
        }
        (reads, faults)
    };
    let (reads0, faults0) = run(0.0);
    let (reads32, faults32) = run(0.32);
    dt.set_buffer_pages(0);
    ot.set_buffer_pages(0);
    assert_eq!(reads0, reads32, "logical reads must not depend on buffer");
    assert!(
        faults32 < faults0,
        "buffer must cut faults: {faults32} vs {faults0}"
    );
}

#[test]
fn one_tree_variant_agrees_on_random_workload() {
    let (points, obstacles) = world(41, 300, 150);
    let dt = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let ut = build_unified_tree(&points, &obstacles, DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();
    for q in datasets::query_segments(4, 0.04, 55, &obstacles) {
        let (two, _) = coknn_search(&dt, &ot, &q, 5, &cfg);
        let (one, _) = coknn_search_single_tree(&ut, &q, 5, &cfg);
        for i in 0..=12 {
            let t = q.len() * (i as f64) / 12.0;
            let (a, b) = (two.knn_at(t), one.knn_at(t));
            assert_eq!(a.len(), b.len(), "t = {t}");
            for (x, y) in a.iter().zip(&b) {
                assert!((x.1 - y.1).abs() < 1e-6, "t = {t}");
            }
        }
    }
}

#[test]
fn obstructed_distances_dominate_euclidean_everywhere() {
    let (points, obstacles) = world(59, 350, 150);
    let dt = RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let q = datasets::query_segment(0.05, 8, &obstacles);
    let (res, _) = conn_search(&dt, &ot, &q, &ConnConfig::default());
    for i in 0..=50 {
        let t = q.len() * (i as f64) / 50.0;
        if let Some((p, d)) = res.nn_at(t) {
            assert!(d + 1e-9 >= p.pos.dist(q.at(t)), "t = {t}");
        }
    }
}

#[test]
fn split_point_count_is_modest_and_result_well_formed() {
    let (points, obstacles) = world(67, 300, 400);
    let dt = RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE);
    let ot = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let q = datasets::query_segment(0.06, 9, &obstacles);
    let (res, stats) = conn_search(&dt, &ot, &q, &ConnConfig::default());
    res.check_cover().unwrap();
    let segs = res.segments();
    // answers change only at split points; neighboring tuples differ
    for w in segs.windows(2) {
        assert_ne!(
            w[0].0.map(|p| p.id),
            w[1].0.map(|p| p.id),
            "unmerged neighbors"
        );
    }
    // each evaluated point's piecewise-hyperbolic function can win several
    // disjoint stretches, but the answer count stays linear in NPE
    assert!(
        segs.len() as u64 <= 4 * stats.npe + 2,
        "answer fragmentation: {} segments from {} points",
        segs.len(),
        stats.npe
    );
    assert_eq!(res.split_points().len() + 1, segs.len());
}
