//! Smoke test for the workspace surface: every public item re-exported by
//! `conn::prelude` is constructed or called at least once, so a missing or
//! renamed re-export breaks this file at compile time.

use conn::prelude::*;

/// A small scene: four stations around a wall, queried along a road.
fn scene() -> (Vec<DataPoint>, Vec<Rect>, Segment) {
    let points = vec![
        DataPoint::new(0, Point::new(100.0, 150.0)),
        DataPoint::new(1, Point::new(400.0, 120.0)),
        DataPoint::new(2, Point::new(700.0, 200.0)),
        DataPoint::new(3, Point::new(900.0, 80.0)),
    ];
    let obstacles = vec![
        Rect::new(250.0, 50.0, 330.0, 180.0),
        Rect::new(550.0, 20.0, 620.0, 140.0),
    ];
    let q = Segment::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
    (points, obstacles, q)
}

#[test]
fn every_prelude_item_is_usable() {
    let (points, obstacles, q) = scene();

    // Geometry primitives.
    let p = Point::new(1.0, 2.0);
    assert!(p.dist(Point::new(1.0, 2.0)) < 1e-12);
    let iv = Interval::new(0.25, 0.75);
    assert!((iv.len() - 0.5).abs() < 1e-12);
    assert!(q.len() > 999.0);
    assert!(obstacles[0].area() > 0.0);

    // Index construction via the facade re-exports.
    let data_tree = RStarTree::bulk_load(points.clone(), DEFAULT_PAGE_SIZE);
    let obs_tree = RStarTree::bulk_load(obstacles.clone(), DEFAULT_PAGE_SIZE);
    let cfg = ConnConfig::default();

    // CONN on two trees.
    let (conn_res, conn_stats): (ConnResult, QueryStats) =
        conn_search(&data_tree, &obs_tree, &q, &cfg);
    assert!(!conn_res.entries().is_empty());
    assert!(conn_stats.npe >= 1);

    // COkNN on two trees.
    let (coknn_res, _): (CoknnResult, QueryStats) =
        coknn_search(&data_tree, &obs_tree, &q, 2, &cfg);
    assert!(!coknn_res.segments().is_empty());

    // Single unified tree variants.
    let unified = build_unified_tree(&points, &obstacles, DEFAULT_PAGE_SIZE);
    let (res_1t, _) = conn_search_single_tree(&unified, &q, &cfg);
    assert_eq!(
        res_1t.segments().len(),
        conn_res.segments().len(),
        "1T and 2T CONN must agree on the result partition"
    );
    let (coknn_1t, _) = coknn_search_single_tree(&unified, &q, 2, &cfg);
    assert_eq!(coknn_1t.segments().len(), coknn_res.segments().len());

    // Point queries and raw obstructed distance.
    let (nn, _) = onn_search(&data_tree, &obs_tree, Point::new(500.0, 0.0), 1, &cfg);
    assert_eq!(nn.len(), 1);
    let od = obstructed_distance(&obstacles, Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
    assert!(od >= 1000.0 - 1e-9);

    // Trajectory (polyline) queries.
    let traj = Trajectory::new(vec![
        Point::new(0.0, 0.0),
        Point::new(500.0, 10.0),
        Point::new(1000.0, 0.0),
    ]);
    let (traj_res, traj_stats) = trajectory_conn_search(&data_tree, &obs_tree, &traj, &cfg);
    assert!(!traj_res.segments().is_empty());
    assert!(traj_stats.npe >= 1);

    // The extended point-query family.
    let (rnn, _) = obstructed_rnn(&data_tree, &obs_tree, Point::new(500.0, 0.0), &cfg);
    let (in_range, range_stats) =
        obstructed_range_search(&data_tree, &obs_tree, Point::new(500.0, 0.0), 400.0, &cfg);
    assert!(rnn.len() <= points.len() && in_range.len() <= points.len());
    let _: ReuseCounters = range_stats.reuse;

    // The typed front door: Scene → Query → ConnService → Response/Answer.
    let service = ConnService::new(Scene::new(points.clone(), obstacles.clone()));
    let query: Query = Query::conn(q).build().expect("valid query");
    let response: Response = service.execute(&query).expect("execution");
    let front_door: &ConnResult = response.answer.as_conn().expect("conn answer");
    assert_eq!(front_door.segments().len(), conn_res.segments().len());
    let err: Error = Query::coknn(q, 0).build().unwrap_err();
    assert!(matches!(err, Error::InvalidQuery(_)));

    // Streaming sessions re-exported at the top level.
    let mut session = TrajectorySession::new(&data_tree, &obs_tree, Point::new(0.0, 0.0), cfg);
    let delta = session.push_leg(Point::new(400.0, 20.0));
    assert!(!delta.is_empty());
}

#[test]
fn facade_modules_are_reachable() {
    // The non-prelude facade surface: crate-level module re-exports.
    let rects = conn::datasets::la_like(30, 7);
    assert_eq!(rects.len(), 30);
    let pts = conn::datasets::uniform_points(20, 7, &rects);
    assert_eq!(pts.len(), 20);

    let g = conn::vgraph::VisGraph::new(100.0);
    assert_eq!(g.num_obstacles(), 0);

    let r = conn::geom::Rect::new(0.0, 0.0, 1.0, 1.0);
    assert!(conn::geom::approx_eq(r.area(), 1.0));
}
