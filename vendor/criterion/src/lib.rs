//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access. This crate keeps the bench
//! sources compiling and *runnable* — each benchmark executes a handful of
//! timed iterations and prints a mean wall-clock time — without criterion's
//! statistical machinery. Swap the workspace dependency back to the real
//! crate for publishable numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            name: Some(s),
            parameter: None,
        }
    }
}

/// Runs the closure under test and accumulates elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 3,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, 3, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // The stub runs far fewer iterations than real criterion; keep the
        // requested size as an upper bound so smoke runs stay fast.
        self.sample_size = n.clamp(1, 5);
        self
    }

    /// Accepted for API compatibility; the stub has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub runs a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        run_one(&self.name, &id.into().to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let mean = if iters > 0 {
        total / iters as u32
    } else {
        total
    };
    if group.is_empty() {
        println!("bench {id}: mean {mean:?} over {iters} iter(s)");
    } else {
        println!("bench {group}/{id}: mean {mean:?} over {iters} iter(s)");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
