//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::AnyStrategy;
use std::marker::PhantomData;

pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}
