//! Value-generation strategies: the mini-`Strategy` trait plus the
//! combinators and primitive implementations the workspace's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter` / `prop_filter_map` retries before giving up.
const FILTER_RETRIES: usize = 1000;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase, mirroring `Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Full-domain strategy used by [`crate::arbitrary::any`].
pub struct AnyStrategy<T> {
    pub(crate) _marker: PhantomData<T>,
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen::<$t>()
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Strategy for AnyStrategy<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; the real `any::<f64>` includes
        // specials, which the workspace's tests do not rely on.
        (rng.rng.gen::<f64>() - 0.5) * 2e6
    }
}

impl Strategy for AnyStrategy<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (rng.rng.gen::<f32>() - 0.5) * 2e6
    }
}
