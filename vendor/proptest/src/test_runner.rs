//! Test-runner plumbing: config, RNG, and the error type `prop_assert!`
//! returns through.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Mirrors `proptest::test_runner::Config` for the fields the workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test function's name so every
/// run generates the same cases (the stub has no failure persistence).
pub struct TestRng {
    pub rng: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }
}

/// Failure value produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Mirrors `TestCaseError::reject`; the stub treats rejection as failure.
    pub fn reject<S: Into<String>>(message: S) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}
