//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! just enough of proptest's surface to run the workspace's property tests:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, range and tuple
//! strategies, `prop_map`/`prop_filter`/`prop_filter_map`, `Just`, `any`,
//! and `prop::collection::vec`.
//!
//! Differences from the real crate: no shrinking (a failing case is reported
//! as generated) and a fixed deterministic seed per test function, so runs
//! are reproducible. Swap the workspace dependency for the real crate to get
//! shrinking and persistence.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors the real prelude's `prop` module alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// The `proptest! { ... }` block: optional config header, then `#[test]`
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
}
