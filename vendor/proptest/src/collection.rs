//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
