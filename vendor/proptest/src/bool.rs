//! Boolean strategies (`prop::bool::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Yields `true` with the given probability.
pub fn weighted(probability: f64) -> Weighted {
    Weighted { probability }
}

#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    probability: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen_bool(self.probability)
    }
}
