//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides an
//! API-compatible implementation of exactly the surface the workspace calls:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and `Rng::gen_bool`.
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic in the
//! seed, which is all the dataset generators and tests require. It is **not**
//! the same stream as upstream `StdRng` (ChaCha12), so numeric outputs differ
//! from a build against real `rand`; determinism per seed is the contract.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

/// Low-level word source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, mirroring `rand_core::SeedableRng` (only `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats), mirroring `Distribution<T> for Standard`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`, mirroring `SampleRange<T>`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

mod std_rng {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64. Deterministic in the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0..9.0);
            assert!((3.0..9.0).contains(&x));
            let n = rng.gen_range(5usize..12);
            assert!((5..12).contains(&n));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
